"""Synthetic-data pipelines: Exact Match → Syn → Syn* (Figure 2, left half).

This module wires the two-stage weak-supervision procedure together:

1. **Exact matching** produces trivially aligned pairs in the target domain.
2. **Mention rewriting** replaces each pair's surface form with a generated
   paraphrase of the entity description.  The rewriter is trained on
   source-domain supervision (``syn``), optionally followed by an
   unsupervised denoising pass over target-domain documents (``syn*``).

Every public helper returns plain lists of :class:`EntityMentionPair`, tagged
with a ``source`` so downstream code (and Figure 4) can tell them apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..data.zeshel import Corpus
from ..kb.entity import EntityMentionPair
from ..text.tokenizer import Tokenizer
from ..utils.config import RewriterConfig
from ..utils.logging import get_logger
from .exact_match import exact_match_dataset
from .rewriter import MentionRewriter

_LOGGER = get_logger("synthesis")

DATA_SOURCE_EXACT = "exact_match"
DATA_SOURCE_SYN = "syn"
DATA_SOURCE_SYN_STAR = "syn_star"


@dataclass
class SyntheticDataBundle:
    """All synthetic training sets for one target domain."""

    domain: str
    exact_match: List[EntityMentionPair]
    syn: List[EntityMentionPair]
    syn_star: List[EntityMentionPair] = field(default_factory=list)

    def by_name(self, name: str) -> List[EntityMentionPair]:
        """Look up a dataset by its paper name (``exact_match`` / ``syn`` / ``syn*``)."""
        key = name.replace("*", "_star").lower()
        if key == DATA_SOURCE_EXACT:
            return list(self.exact_match)
        if key == DATA_SOURCE_SYN:
            return list(self.syn)
        if key == DATA_SOURCE_SYN_STAR:
            return list(self.syn_star)
        raise KeyError(f"unknown synthetic dataset {name!r}")

    def sizes(self) -> Dict[str, int]:
        return {
            "exact_match": len(self.exact_match),
            "syn": len(self.syn),
            "syn_star": len(self.syn_star),
        }


def build_tokenizer_for_corpus(corpus: Corpus, max_vocab_size: int = 4096, max_length: int = 48) -> Tokenizer:
    """Build a tokenizer whose vocabulary covers the whole corpus."""
    return Tokenizer.from_texts(corpus.all_texts(), max_vocab_size=max_vocab_size, max_length=max_length)


def source_domain_pairs(corpus: Corpus, limit_per_domain: Optional[int] = None) -> List[EntityMentionPair]:
    """Gold pairs from the 8 training domains (rewriter / general-domain training)."""
    pairs: List[EntityMentionPair] = []
    for domain in corpus.domain_names(split="train"):
        domain_pairs = corpus.pairs(domain)
        if limit_per_domain is not None:
            domain_pairs = domain_pairs[:limit_per_domain]
        pairs.extend(domain_pairs)
    return pairs


def train_rewriter(
    corpus: Corpus,
    tokenizer: Tokenizer,
    target_domain: Optional[str] = None,
    config: Optional[RewriterConfig] = None,
    limit_per_domain: Optional[int] = 100,
    seed: int = 0,
) -> MentionRewriter:
    """Train a mention rewriter on the source domains.

    When ``target_domain`` is given the rewriter additionally runs the
    unsupervised denoising pass over that domain's documents, producing the
    ``syn*`` generator.
    """
    rewriter = MentionRewriter(tokenizer, config=config)
    pairs = source_domain_pairs(corpus, limit_per_domain=limit_per_domain)
    target_texts = corpus.documents.texts(target_domain) if target_domain else None
    rewriter.fit(pairs, target_domain_texts=target_texts, seed=seed)
    return rewriter


def build_exact_match_data(
    corpus: Corpus,
    domain: str,
    per_entity: int = 2,
    seed: int = 13,
) -> List[EntityMentionPair]:
    """Stage 1: exact-matching weak supervision for one target domain."""
    entities = corpus.entities(domain)
    mentions = corpus.mentions(domain)
    return exact_match_dataset(entities, mentions=mentions, per_entity=per_entity, seed=seed)


def build_synthetic_data(
    corpus: Corpus,
    domain: str,
    rewriter: MentionRewriter,
    exact_pairs: Optional[Sequence[EntityMentionPair]] = None,
    per_entity: int = 2,
    seed: int = 13,
) -> List[EntityMentionPair]:
    """Stage 2: rewrite the exact-match pairs with the trained generator."""
    pairs = list(exact_pairs) if exact_pairs is not None else build_exact_match_data(
        corpus, domain, per_entity=per_entity, seed=seed
    )
    rewritten = rewriter.rewrite_pairs(pairs)
    _LOGGER.debug("rewrote %d pairs for domain %s", len(rewritten), domain)
    return rewritten


def build_bundle(
    corpus: Corpus,
    domain: str,
    tokenizer: Optional[Tokenizer] = None,
    rewriter_config: Optional[RewriterConfig] = None,
    per_entity: int = 2,
    include_syn_star: bool = True,
    limit_per_domain: Optional[int] = 100,
    seed: int = 13,
) -> SyntheticDataBundle:
    """End-to-end generation of exact-match / syn / syn* data for one domain."""
    tokenizer = tokenizer or build_tokenizer_for_corpus(corpus)
    exact_pairs = build_exact_match_data(corpus, domain, per_entity=per_entity, seed=seed)

    syn_rewriter = train_rewriter(
        corpus, tokenizer, target_domain=None, config=rewriter_config,
        limit_per_domain=limit_per_domain, seed=seed,
    )
    syn_pairs = build_synthetic_data(corpus, domain, syn_rewriter, exact_pairs=exact_pairs, seed=seed)

    syn_star_pairs: List[EntityMentionPair] = []
    if include_syn_star:
        star_rewriter = train_rewriter(
            corpus, tokenizer, target_domain=domain, config=rewriter_config,
            limit_per_domain=limit_per_domain, seed=seed + 1,
        )
        syn_star_pairs = build_synthetic_data(
            corpus, domain, star_rewriter, exact_pairs=exact_pairs, seed=seed + 1
        )

    return SyntheticDataBundle(
        domain=domain,
        exact_match=exact_pairs,
        syn=syn_pairs,
        syn_star=syn_star_pairs,
    )
