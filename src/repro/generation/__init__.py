"""Synthetic-data generation: exact matching, mention rewriting, noise."""

from .exact_match import (
    EXACT_MATCH_SOURCE,
    build_title_index,
    exact_match_dataset,
    generate_title_mentions,
    match_mentions,
)
from .noise import NOISE_SOURCE, corrupt_pairs, mix_with_noise
from .rewriter import REWRITTEN_SOURCE, MentionRewriter, RewriterTrainingSummary
from .seq2seq import Seq2SeqBatch, Seq2SeqModel
from .synthesis import (
    DATA_SOURCE_EXACT,
    DATA_SOURCE_SYN,
    DATA_SOURCE_SYN_STAR,
    SyntheticDataBundle,
    build_bundle,
    build_exact_match_data,
    build_synthetic_data,
    build_tokenizer_for_corpus,
    source_domain_pairs,
    train_rewriter,
)

__all__ = [
    "EXACT_MATCH_SOURCE",
    "REWRITTEN_SOURCE",
    "NOISE_SOURCE",
    "build_title_index",
    "match_mentions",
    "generate_title_mentions",
    "exact_match_dataset",
    "corrupt_pairs",
    "mix_with_noise",
    "MentionRewriter",
    "RewriterTrainingSummary",
    "Seq2SeqModel",
    "Seq2SeqBatch",
    "SyntheticDataBundle",
    "build_bundle",
    "build_exact_match_data",
    "build_synthetic_data",
    "build_tokenizer_for_corpus",
    "source_domain_pairs",
    "train_rewriter",
    "DATA_SOURCE_EXACT",
    "DATA_SOURCE_SYN",
    "DATA_SOURCE_SYN_STAR",
]
