"""Noise injection used by the Figure 4 experiment.

The paper tests whether meta-learning can tell good synthetic data from bad by
*generating bad samples on purpose*: mentions are linked to random (wrong)
entities, and the selection ratio of normal vs corrupted data under the
meta-learned weights is compared.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..kb.entity import Entity, EntityMentionPair
from ..utils.rng import derive_seed

NOISE_SOURCE = "noise"


def corrupt_pairs(
    pairs: Sequence[EntityMentionPair],
    entities: Sequence[Entity],
    fraction: float = 0.5,
    seed: int = 13,
) -> Tuple[List[EntityMentionPair], List[EntityMentionPair]]:
    """Return (kept_normal, corrupted) pairs.

    ``fraction`` of the input pairs are relabelled to a random *different*
    entity and marked with ``source="noise"``.  The remaining pairs are
    returned unchanged.  Raises when fewer than two entities are available
    (no wrong entity to link to).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    if len(entities) < 2:
        raise ValueError("need at least two entities to create corrupted pairs")
    rng = np.random.default_rng(derive_seed(seed, "noise"))
    pairs = list(pairs)
    corrupted_count = int(round(fraction * len(pairs)))
    corrupted_indices = set(
        int(i) for i in rng.choice(len(pairs), size=corrupted_count, replace=False)
    ) if corrupted_count else set()

    normal: List[EntityMentionPair] = []
    corrupted: List[EntityMentionPair] = []
    for index, pair in enumerate(pairs):
        if index not in corrupted_indices:
            normal.append(pair)
            continue
        wrong = pair.entity
        while wrong.entity_id == pair.entity.entity_id:
            wrong = entities[int(rng.integers(0, len(entities)))]
        corrupted.append(pair.relabelled(wrong, source=NOISE_SOURCE))
    return normal, corrupted


def mix_with_noise(
    pairs: Sequence[EntityMentionPair],
    entities: Sequence[Entity],
    fraction: float = 0.5,
    seed: int = 13,
) -> List[EntityMentionPair]:
    """Convenience wrapper returning the shuffled union of normal + corrupted."""
    normal, corrupted = corrupt_pairs(pairs, entities, fraction=fraction, seed=seed)
    combined = normal + corrupted
    rng = np.random.default_rng(derive_seed(seed, "noise_shuffle"))
    order = rng.permutation(len(combined))
    return [combined[i] for i in order]
