"""Sequence-to-sequence model (T5 stand-in) built on :mod:`repro.nn`.

The model is a transformer encoder-decoder trained with teacher forcing on
(source ids → target ids) pairs.  Decoding is greedy, optionally constrained
to tokens that occur in the source sequence ("copy-biased" decoding), which
keeps generations on-topic even for the very small models that are practical
on CPU — the role T5's pre-training plays in the original system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Adam, Module, TransformerDecoder, TransformerEncoder, clip_grad_norm, no_grad
from ..nn import functional as F
from ..utils.config import RewriterConfig
from ..utils.logging import MetricHistory
from ..utils.rng import batched_indices


@dataclass
class Seq2SeqBatch:
    """A teacher-forcing batch: encoder inputs and padded decoder targets."""

    source_ids: np.ndarray
    target_ids: np.ndarray


class Seq2SeqModel(Module):
    """Transformer encoder-decoder with teacher-forcing training utilities."""

    def __init__(self, config: RewriterConfig, pad_id: int, bos_id: int, eos_id: int) -> None:
        super().__init__()
        self.config = config
        self.pad_id = pad_id
        self.bos_id = bos_id
        self.eos_id = eos_id
        self.encoder = TransformerEncoder(
            vocab_size=config.vocab_size,
            model_dim=config.model_dim,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            hidden_dim=config.hidden_dim,
            max_length=config.max_source_length,
            dropout=0.1,
            padding_idx=pad_id,
            seed=config.seed,
        )
        self.decoder = TransformerDecoder(
            vocab_size=config.vocab_size,
            model_dim=config.model_dim,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            hidden_dim=config.hidden_dim,
            max_length=config.max_target_length + 1,
            dropout=0.1,
            padding_idx=pad_id,
            seed=config.seed + 1,
        )

    # ------------------------------------------------------------------
    # Loss / training
    # ------------------------------------------------------------------
    def batch_loss(self, source_ids: np.ndarray, target_ids: np.ndarray):
        """Teacher-forced cross entropy, ignoring padding targets."""
        source_ids = np.asarray(source_ids, dtype=np.int64)
        target_ids = np.asarray(target_ids, dtype=np.int64)
        decoder_input = target_ids[:, :-1]
        decoder_target = target_ids[:, 1:]

        memory = self.encoder(source_ids)
        logits = self.decoder(decoder_input, memory, memory_padding_mask=(source_ids == self.pad_id))

        batch, length, vocab = logits.shape
        flat_logits = logits.reshape(batch * length, vocab)
        flat_targets = decoder_target.reshape(-1)
        keep = (flat_targets != self.pad_id).astype(np.float64)
        total_real = max(keep.sum(), 1.0)
        loss = F.cross_entropy(flat_logits, flat_targets, reduction="none", sample_weights=keep)
        return loss.sum() * (1.0 / total_real)

    def fit(
        self,
        source_ids: np.ndarray,
        target_ids: np.ndarray,
        epochs: Optional[int] = None,
        batch_size: Optional[int] = None,
        learning_rate: Optional[float] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train with Adam over the provided pairs; returns the loss history."""
        if len(source_ids) != len(target_ids):
            raise ValueError("source and target batches must have equal length")
        if len(source_ids) == 0:
            raise ValueError("cannot fit on an empty dataset")
        epochs = self.config.epochs if epochs is None else epochs
        batch_size = self.config.batch_size if batch_size is None else batch_size
        learning_rate = self.config.learning_rate if learning_rate is None else learning_rate

        optimizer = Adam(self.parameters(), lr=learning_rate)
        history = MetricHistory()
        rng = np.random.default_rng(seed)
        self.train()
        try:
            for epoch in range(epochs):
                epoch_losses: List[float] = []
                for batch in batched_indices(len(source_ids), batch_size, rng):
                    loss = self.batch_loss(source_ids[batch], target_ids[batch])
                    self.zero_grad()
                    loss.backward()
                    clip_grad_norm(self.parameters(), 1.0)
                    optimizer.step()
                    epoch_losses.append(loss.item())
                history.add("loss", float(np.mean(epoch_losses)))
        finally:
            self.eval()
        return history

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _per_row_ids(
        self, token_ids: Optional[Sequence], batch: int
    ) -> Optional[List[np.ndarray]]:
        """Normalise a constraint argument to one id array per batch row.

        Accepts either a flat sequence of ints (shared by every row) or a
        sequence of per-row id collections (one per batch row, enabling
        per-entity constraints in a single batched decode).
        """
        if token_ids is None:
            return None
        seq = list(token_ids)
        if seq and isinstance(seq[0], (list, tuple, set, frozenset, np.ndarray)):
            if len(seq) != batch:
                raise ValueError(
                    f"per-row token id lists ({len(seq)}) must match batch size {batch}"
                )
            return [np.asarray(sorted(row) if isinstance(row, (set, frozenset)) else list(row),
                               dtype=np.int64) for row in seq]
        shared = np.asarray(seq, dtype=np.int64)
        return [shared] * batch

    def _decode_biases(
        self,
        batch: int,
        allowed: Optional[List[np.ndarray]],
        banned: Optional[List[np.ndarray]],
        boosted: Optional[List[np.ndarray]],
        boost: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Precomputed per-row decode constraints.

        Returns ``(additive, blocked)``: a ``(batch, vocab)`` float matrix of
        copy-mechanism boosts added to every step's logits, and a
        ``(batch, vocab)`` boolean matrix of tokens forced to ``-1e9``
        (banned tokens, tokens outside the allowed set).  Together with the
        repetition matrix these replace the per-row / per-token Python loops
        of the naive decoder with three vectorized array ops per step.
        """
        vocab = self.config.vocab_size
        additive = np.zeros((batch, vocab))
        blocked = np.zeros((batch, vocab), dtype=bool)
        if boosted is not None:
            for row, ids in enumerate(boosted):
                additive[row, ids] = boost
        if allowed is not None:
            blocked[:] = True
            for row, ids in enumerate(allowed):
                blocked[row, ids] = False
            blocked[:, self.eos_id] = False
        blocked[:, self.pad_id] = True
        if banned is not None:
            for row, ids in enumerate(banned):
                blocked[row, ids] = True
        return additive, blocked

    def greedy_decode(
        self,
        source_ids: np.ndarray,
        max_length: Optional[int] = None,
        allowed_token_ids: Optional[Sequence] = None,
        banned_token_ids: Optional[Sequence] = None,
        boosted_token_ids: Optional[Sequence] = None,
        boost: float = 2.0,
        repetition_penalty: float = 4.0,
        min_length: int = 1,
    ) -> List[List[int]]:
        """Greedy decoding for a batch of source sequences (KV-cached).

        ``allowed_token_ids`` restricts generation to a token subset (plus the
        end-of-sequence token); ``banned_token_ids`` removes tokens such as
        padding / unknown from consideration.  ``boosted_token_ids`` receive a
        logit bonus (a lightweight copy mechanism that keeps small models
        on-topic), and already-generated tokens are penalised to avoid the
        degenerate repetition small seq2seq models are prone to.  Each
        constraint accepts either a flat id sequence (shared across the
        batch) or one id collection per row.

        The decode runs on the incremental engine: one encoder pass and one
        BOS prefill build a :class:`~repro.nn.DecoderState`, then every step
        feeds only the newly chosen token — cached K/V make the attention
        cost linear instead of quadratic in the target length.  Constraint
        logic is applied through precomputed bias matrices and finished rows
        are dropped from the active batch.  Output is token-for-token
        identical to :meth:`greedy_decode_naive`.
        """
        source_ids = np.asarray(source_ids, dtype=np.int64)
        if source_ids.ndim == 1:
            source_ids = source_ids[None, :]
        max_length = self.config.max_target_length if max_length is None else max_length

        batch = source_ids.shape[0]
        additive, blocked = self._decode_biases(
            batch,
            self._per_row_ids(allowed_token_ids, batch),
            self._per_row_ids(banned_token_ids, batch),
            self._per_row_ids(boosted_token_ids, batch),
            boost,
        )
        repetition = np.zeros_like(additive) if repetition_penalty else None

        self.eval()
        sequences = np.full((batch, max_length), self.pad_id, dtype=np.int64)
        active = np.arange(batch)
        with no_grad():
            memory = self.encoder(source_ids)
            # Follow the encoder's compute dtype instead of pinning float64:
            # under compute_dtype("float32") a hard-coded cast would upcast
            # the logit slice on every decode step of every request.
            step_dtype = memory.data.dtype
            additive = additive.astype(step_dtype, copy=False)
            if repetition is not None:
                repetition = repetition.astype(step_dtype, copy=False)
            state = self.decoder.init_state(
                memory, source_ids == self.pad_id, max_length=max_length + 1
            )
            tokens = np.full((batch, 1), self.bos_id, dtype=np.int64)
            for step in range(max_length):
                logits = self.decoder.forward_step(tokens, state)
                step_logits = np.asarray(logits.data[:, -1, :], dtype=step_dtype)
                step_logits = step_logits + additive[active]
                if step < min_length:
                    step_logits[:, self.eos_id] = -1e9
                if repetition is not None:
                    step_logits += repetition[active]
                step_logits[blocked[active]] = -1e9
                next_tokens = step_logits.argmax(axis=-1)
                sequences[active, step] = next_tokens
                if repetition is not None:
                    repetition[active, next_tokens] = -repetition_penalty
                alive = next_tokens != self.eos_id
                if not alive.all():
                    active = active[alive]
                    if active.size == 0:
                        break
                    state.select_rows(alive)
                    next_tokens = next_tokens[alive]
                tokens = next_tokens[:, None]
        return self._trim_sequences(sequences)

    def greedy_decode_naive(
        self,
        source_ids: np.ndarray,
        max_length: Optional[int] = None,
        allowed_token_ids: Optional[Sequence[int]] = None,
        banned_token_ids: Optional[Sequence[int]] = None,
        boosted_token_ids: Optional[Sequence[int]] = None,
        boost: float = 2.0,
        repetition_penalty: float = 4.0,
        min_length: int = 1,
    ) -> List[List[int]]:
        """Reference greedy decoder: full re-forward over the growing prefix.

        The original O(T²) loop, kept verbatim as the ground truth for the
        KV-cache parity suite and as the baseline of the decode-throughput
        benchmark.  Constraints here are flat id sequences shared by the
        whole batch (the pre-engine signature).
        """
        source_ids = np.asarray(source_ids, dtype=np.int64)
        if source_ids.ndim == 1:
            source_ids = source_ids[None, :]
        max_length = self.config.max_target_length if max_length is None else max_length

        vocab = self.config.vocab_size
        allowed_mask = None
        if allowed_token_ids is not None:
            allowed_mask = np.full(vocab, True)
            allowed_mask[np.asarray(list(allowed_token_ids), dtype=np.int64)] = False
            allowed_mask[self.eos_id] = False
        banned = set(int(t) for t in (banned_token_ids or ()))
        banned.add(self.pad_id)
        boost_vector = np.zeros(vocab)
        if boosted_token_ids is not None:
            boost_vector[np.asarray(list(boosted_token_ids), dtype=np.int64)] = boost

        self.eval()
        batch = source_ids.shape[0]
        sequences = np.full((batch, 1), self.bos_id, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        with no_grad():
            memory = self.encoder(source_ids)
            padding_mask = source_ids == self.pad_id
            for step in range(max_length):
                logits = self.decoder(sequences, memory, memory_padding_mask=padding_mask)
                step_logits = logits.data[:, -1, :].copy()
                step_logits = step_logits + boost_vector[None, :]
                if step < min_length:
                    step_logits[:, self.eos_id] = -1e9
                if repetition_penalty:
                    for row_index in range(batch):
                        generated = sequences[row_index, 1:]
                        step_logits[row_index, generated] -= repetition_penalty
                if allowed_mask is not None:
                    step_logits[:, allowed_mask] = -1e9
                for token in banned:
                    step_logits[:, token] = -1e9
                next_tokens = step_logits.argmax(axis=-1)
                next_tokens = np.where(finished, self.pad_id, next_tokens)
                sequences = np.concatenate([sequences, next_tokens[:, None]], axis=1)
                finished |= next_tokens == self.eos_id
                if finished.all():
                    break
        return self._trim_sequences(sequences[:, 1:])

    def _trim_sequences(self, sequences: np.ndarray) -> List[List[int]]:
        """Cut each generated row at its first end-of-sequence / pad token."""
        outputs: List[List[int]] = []
        for row in sequences:
            tokens: List[int] = []
            for token in row:
                if token == self.eos_id or token == self.pad_id:
                    break
                tokens.append(int(token))
            outputs.append(tokens)
        return outputs
