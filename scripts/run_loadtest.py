#!/usr/bin/env python
"""Run load scenarios against a LinkingService and report SLO verdicts.

Builds a small synthetic serving stack (corpus → bi/cross-encoder →
sharded index → dynamic-batching service), replays one or more scenarios
from the standard catalogue through the :class:`repro.bench.LoadHarness`,
evaluates each result against an SLO spec, prints the Markdown scenario
report and writes the machine-readable payload (the ``BENCH_load.json``
shape).  With ``--baseline`` the fresh run is additionally gated against a
committed payload and the exit code reflects the verdict.

With ``--replicas N`` (N >= 2) the front door is a
:class:`~repro.serving.Router` over an N-wide :class:`~repro.serving.ReplicaPool`
instead of a single service, and the degraded-replica scenarios from the
cluster catalogue (``kill_replica``, ``slow_replica``, ``freeze_thaw``,
the self-healing ``crash_loop_recovery`` and ``brownout_overload``, plus
the healthy ``cluster_steady`` baseline) become selectable — each replays
its :class:`~repro.serving.FaultPlan` against the pool mid-run.

Scenarios marked ``supervised`` automatically run with a
:class:`~repro.serving.Supervisor` attached (they are only survivable with
auto-restart); ``--supervisor`` forces one onto every cluster scenario,
``--restart-budget`` caps how many restarts the supervisor may spend per
rolling window, and ``--brownout`` arms the brownout controller so
degraded mode can engage under queue pressure even for scenarios that do
not require it.

Usage::

    PYTHONPATH=src python scripts/run_loadtest.py                        # all scenarios
    PYTHONPATH=src python scripts/run_loadtest.py --scenario burst ramp \
        --duration 2.0 --rate 200 --seed 7 --output BENCH_load.json
    PYTHONPATH=src python scripts/run_loadtest.py --slo slo.json \
        --baseline BENCH_load.json --rtol 0.3
    PYTHONPATH=src python scripts/run_loadtest.py --replicas 4 \
        --scenario kill_replica slow_replica --output BENCH_cluster.json

Exit status: 0 when every SLO and the optional regression gate pass,
1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402 - path bootstrap above
    ClusterScenario,
    LoadHarness,
    SLOSpec,
    attach_slo,
    cluster_scenario_catalogue,
    compare,
    load_bench,
    load_slo_file,
    render_markdown,
    results_payload,
    scenario_catalogue,
    write_json,
)
from repro.data import generate_corpus, split_domain  # noqa: E402
from repro.data.worlds import TEST_DOMAINS  # noqa: E402
from repro.generation import build_tokenizer_for_corpus  # noqa: E402
from repro.linking import BlinkPipeline  # noqa: E402
from repro.serving import (  # noqa: E402
    BrownoutController,
    BrownoutPolicy,
    EntityLinkingPipeline,
    LinkingService,
    ReplicaPool,
    RestartPolicy,
    Router,
    Supervisor,
)
from repro.utils.config import (  # noqa: E402
    BiEncoderConfig,
    CorpusConfig,
    CrossEncoderConfig,
    EncoderConfig,
)

#: Default generous lab SLO: correctness of the gate matters more than the
#: absolute numbers on a developer laptop.
DEFAULT_SLO = SLOSpec(name="lab-default", max_p99_ms=2000.0,
                      min_throughput=1.0, max_error_rate=0.0)

#: Supervisor tuning for scripted chaos: eager repairs (no backoff) and a
#: zero ``min_uptime`` so a scenario that deliberately re-kills the same
#: replica is not mistaken for a crash loop and quarantined mid-run.
SUPERVISOR_INTERVAL = 0.02
BROWNOUT_POLICY = BrownoutPolicy(enter_depth=32, exit_depth=8,
                                 enter_sustain_seconds=0.1,
                                 exit_sustain_seconds=0.2)


def repair_policy(budget: int) -> RestartPolicy:
    return RestartPolicy(initial_backoff_seconds=0.01, jitter=0.0,
                         budget=budget, budget_window_seconds=60.0,
                         min_uptime_seconds=0.0)


def build_service(args: argparse.Namespace):
    """Small serving stack + per-world mention pools for the samplers."""
    corpus = generate_corpus(CorpusConfig(
        entities_per_domain=args.entities_per_domain,
        mentions_per_domain=args.mentions_per_domain,
        seed=args.seed,
    ))
    tokenizer = build_tokenizer_for_corpus(corpus, max_length=16)
    encoder = EncoderConfig(model_dim=16, num_layers=1, num_heads=2,
                            hidden_dim=32, max_length=16)
    blink = BlinkPipeline(
        tokenizer,
        BiEncoderConfig(encoder=encoder),
        CrossEncoderConfig(encoder=encoder, num_candidates=args.k),
    )
    worlds = list(TEST_DOMAINS)
    entities = [e for world in worlds for e in corpus.entities(world)]
    pools = {
        world: split_domain(corpus, world, seed_size=30, dev_size=20).test
        for world in worlds
    }
    backend = None
    if args.approximate:
        from repro.index import IVFBackend

        backend = IVFBackend(nprobe=args.nprobe, codec=args.codec)
    index = blink.biencoder.build_sharded_index(entities, lazy=False, backend=backend)
    pipeline = EntityLinkingPipeline(
        blink.biencoder, index, blink.crossencoder,
        k=args.k, rerank=not args.no_rerank, batch_size=args.batch_size,
    )
    if args.replicas > 1:
        pool = ReplicaPool.from_pipeline(
            pipeline, replicas=args.replicas,
            max_batch_size=args.batch_size, max_wait_ms=args.max_wait_ms,
            process_replicas=args.process_replicas,
        )
        service = Router(pool, seed=args.seed)
    else:
        service = LinkingService(
            pipeline, max_batch_size=args.batch_size, max_wait_ms=args.max_wait_ms
        )
    return service, pools


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", nargs="*", default=None,
                        help="scenario names from the catalogue (default: all); "
                             "choices: steady_poisson burst ramp zipf_worlds "
                             "closed_loop, plus with --replicas >= 2: "
                             "cluster_steady kill_replica slow_replica "
                             "freeze_thaw crash_loop_recovery brownout_overload")
    parser.add_argument("--replicas", type=int, default=1,
                        help="serve through a Router over this many pool "
                             "replicas instead of a single LinkingService "
                             "(>= 2 unlocks the degraded-replica scenarios)")
    parser.add_argument("--process-replicas", type=int, default=0,
                        help="how many pool slots are process-backed replicas")
    parser.add_argument("--supervisor", action="store_true",
                        help="attach a self-healing Supervisor to every "
                             "cluster scenario, not just the ones that "
                             "require it (needs --replicas >= 2)")
    parser.add_argument("--restart-budget", type=int, default=16,
                        help="restarts the supervisor may spend per rolling "
                             "minute before it stops repairing")
    parser.add_argument("--brownout", action="store_true",
                        help="arm the supervisor's brownout controller on "
                             "every cluster scenario so degraded mode can "
                             "engage under queue pressure")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="seconds of traffic per open-loop scenario")
    parser.add_argument("--rate", type=float, default=150.0,
                        help="base arrival rate (requests/second)")
    parser.add_argument("--seed", type=int, default=13,
                        help="workload + corpus seed (same seed => same schedule)")
    parser.add_argument("--num-clients", type=int, default=8,
                        help="closed-loop client count")
    parser.add_argument("--slo", type=Path, default=None,
                        help="JSON SLO spec (one object, or {scenario: spec})")
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_load.json",
                        help="where to write the machine-readable payload")
    parser.add_argument("--markdown", type=Path, default=None,
                        help="also write the Markdown report to this path")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="gate the run against this committed BENCH payload")
    parser.add_argument("--rtol", type=float, default=0.25,
                        help="relative tolerance of the regression gate")
    parser.add_argument("--atol", type=float, default=0.05,
                        help="absolute slack of the gate (near-zero baselines)")
    parser.add_argument("--k", type=int, default=4, help="candidates per mention")
    parser.add_argument("--no-rerank", action="store_true",
                        help="skip the cross-encoder stage")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="service max_batch_size (and pipeline micro-batch)")
    parser.add_argument("--max-wait-ms", type=float, default=25.0,
                        help="service latency-bound flush timer")
    parser.add_argument("--approximate", action="store_true",
                        help="serve candidate generation through the IVF "
                             "approximate backend (repro.index) instead of "
                             "the exact reference index")
    parser.add_argument("--nprobe", type=int, default=8,
                        help="IVF cells probed per query (with --approximate)")
    parser.add_argument("--codec", default="float64",
                        choices=("float64", "float16", "int8"),
                        help="embedding storage codec (with --approximate)")
    parser.add_argument("--entities-per-domain", type=int, default=24)
    parser.add_argument("--mentions-per-domain", type=int, default=120)
    parser.add_argument("--request-timeout", type=float, default=30.0,
                        help="per-request completion budget before cancel")
    return parser.parse_args(argv)


def heal_pool(router: Router) -> None:
    """Undo scenario injuries so the next scenario starts healthy.

    Fault plans outlive their scenario — a killed replica stays dead and an
    injected delay sticks — so between catalogue entries every fault knob is
    reset and dead/stopped slots are restarted as fresh generations.
    """
    pool = router.pool
    router.set_degraded(False)
    for slot in range(len(pool)):
        replica = pool.replica(slot)
        replica.set_delay(0.0)
        replica.unfreeze()
        if replica.state in ("dead", "stopped"):
            pool.restart(slot)


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    if (args.supervisor or args.brownout) and args.replicas < 2:
        raise SystemExit("--supervisor/--brownout need --replicas >= 2")
    if args.restart_budget < 1:
        raise SystemExit("--restart-budget must be >= 1")
    service, pools = build_service(args)
    catalogue = scenario_catalogue(
        pools, seed=args.seed, duration=args.duration, rate=args.rate,
        num_clients=args.num_clients,
    )
    if args.replicas > 1:
        catalogue = {
            **catalogue,
            **cluster_scenario_catalogue(
                pools, replicas=args.replicas, seed=args.seed,
                duration=args.duration, rate=args.rate,
            ),
        }
    names = args.scenario or list(catalogue)
    unknown = sorted(set(names) - set(catalogue))
    if unknown:
        raise SystemExit(
            f"unknown scenario(s) {', '.join(unknown)}; "
            f"known: {', '.join(catalogue)}"
        )
    specs = load_slo_file(args.slo) if args.slo else {"*": DEFAULT_SLO}

    results = []
    with service:
        service.warm_up()
        harness = LoadHarness(service, request_timeout=args.request_timeout)
        for name in names:
            print(f"running {name} ...", flush=True)
            entry = catalogue[name]
            if isinstance(entry, ClusterScenario):
                supervisor = None
                if args.supervisor or entry.supervised:
                    brownout = (BrownoutController(BROWNOUT_POLICY)
                                if args.brownout or entry.brownout else None)
                    supervisor = Supervisor(
                        service, policy=repair_policy(args.restart_budget),
                        interval=SUPERVISOR_INTERVAL, brownout=brownout,
                    )
                try:
                    result = harness.run(entry.workload,
                                         fault_plan=entry.fault_plan)
                finally:
                    if supervisor is not None:
                        supervisor.close()
                heal_pool(service)
            else:
                result = harness.run(entry)
            spec = specs.get(name, specs.get("*", DEFAULT_SLO))
            attach_slo(result, spec.evaluate(result))
            results.append(result)

    config = {
        "duration": args.duration, "rate": args.rate, "seed": args.seed,
        "k": args.k, "rerank": not args.no_rerank,
        "batch_size": args.batch_size, "max_wait_ms": args.max_wait_ms,
        "replicas": args.replicas, "process_replicas": args.process_replicas,
        "entities_per_domain": args.entities_per_domain,
        "mentions_per_domain": args.mentions_per_domain,
        "approximate": args.approximate,
        "nprobe": args.nprobe, "codec": args.codec,
    }
    payload = results_payload(results, config=config)
    write_json(results, args.output, config=config)
    markdown = render_markdown(results)
    if args.markdown:
        args.markdown.write_text(markdown)
    print()
    print(markdown)
    print(f"wrote {args.output}")

    ok = all(result.slo is None or result.slo.get("passed") for result in results)
    if args.baseline:
        baseline = load_bench(args.baseline)
        if isinstance(baseline.get("scenarios"), dict):
            # A partial run gates only the scenarios it actually replayed.
            baseline = {
                **baseline,
                "scenarios": {
                    name: metrics
                    for name, metrics in baseline["scenarios"].items()
                    if name in payload["scenarios"]
                },
            }
        report = compare(payload, baseline, rtol=args.rtol, atol=args.atol)
        print(report.summary())
        ok = ok and report.passed
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
