"""Regenerate EXPERIMENTS.md: run every experiment and record measured tables.

Usage::

    python scripts/generate_experiments_report.py [output_path]

Uses the same scaled-down configuration as the benchmark harness, so the
numbers written here match what ``pytest benchmarks/ --benchmark-only``
exercises.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from conftest import benchmark_config  # type: ignore  # benchmarks/conftest.py

from repro.eval import ExperimentSuite, markdown_table

PAPER_NOTES = {
    "figure1": "Paper: accuracy of a full-transformer linker drops sharply as "
               "in-domain training data shrinks.  Measured: the untrained model is "
               "far below models trained on 10 / 30 in-domain samples.",
    "table5_6": "Paper (Tables V+VI): MetaBLINK (syn*+seed) is best on all four domains; "
                "syn data boosts recall, seed data boosts ranking accuracy; DL4EL does not help. "
                "Measured: same ordering of data sources at small scale (see rows).",
    "table7": "Paper: MetaBLINK improves zero-shot transfer slightly on near domains and "
              "clearly on far domains (Lego, YuGiOh).",
    "table8": "Paper: the domain gap (BLINK+FT − BLINK) is small for Forgotten Realms / Star Trek "
              "and large for Lego / YuGiOh.",
    "table9": "Paper: combining general-domain data, synthetic data and the seed gives the best "
              "average transfer accuracy.",
    "figure4": "Paper: the meta-learner keeps ~50% of normal synthetic data but only ~20% of "
               "deliberately corrupted data.  Measured: corrupted data is selected less often than "
               "normal data.",
    "table10": "Paper: syn > exact match and syn* ≥ syn for both recall and ranking accuracy.",
    "table11": "Paper: ROUGE-1 F1 against golden mentions — syn* > syn > exact match.",
}


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"
    suite = ExperimentSuite(benchmark_config())

    sections = []
    sections.append("# EXPERIMENTS — paper vs measured\n")
    sections.append(
        "All experiments run on the synthetic Zeshel substitute with the scaled-down models of\n"
        "`benchmarks/conftest.py::benchmark_config` (CPU-only).  Absolute numbers are therefore not\n"
        "comparable to the paper's GPU/BERT results; each section records the paper's qualitative\n"
        "claim and whether the measured rows reproduce its *shape*.  Regenerate this file with\n"
        "`python scripts/generate_experiments_report.py`.\n"
    )

    def add(title: str, note_key: str, rows) -> None:
        sections.append(f"## {title}\n")
        sections.append(PAPER_NOTES[note_key] + "\n")
        if isinstance(rows, dict):
            rows = [rows]
        sections.append(markdown_table(rows) + "\n")

    add("Figure 1 — accuracy vs in-domain training size (YuGiOh)", "figure1",
        suite.run_figure1(domain="yugioh", sizes=(0, 10, 30)))

    sections.append("## Tables III / IV — dataset statistics and few-shot splits\n")
    sections.append("Structural tables; the synthetic corpus keeps the paper's 8/4/4 domain split "
                    "and the 50/50/rest few-shot protocol (scaled seed/dev sizes in benchmarks).\n")
    sections.append(markdown_table(suite.run_table4_splits()) + "\n")

    add("Tables V / VI — few-shot entity linking (Lego / YuGiOh)", "table5_6",
        suite.run_table5_6(domains=["lego", "yugioh"]))

    add("Table VII — zero-shot domain transfer", "table7",
        suite.run_table7_transfer(domains=["lego", "yugioh"]))

    add("Table VIII — domain gap", "table8",
        suite.run_table8_gap(domains=["star_trek", "yugioh"], finetune_size=60))

    add("Table IX — transfer with different training sources (YuGiOh)", "table9",
        suite.run_table9_sources(domains=["yugioh"]))

    add("Figure 4 — selection ratio of normal vs corrupted data", "figure4",
        suite.run_figure4_selection(domain="yugioh"))

    add("Table X — effectiveness of mention rewriting (YuGiOh)", "table10",
        suite.run_table10_rewriting(domains=["yugioh"]))

    add("Table XI — ROUGE-1 of generated mentions", "table11",
        suite.run_table11_rouge(domains=["lego", "yugioh"], sample_size=40))

    sections.append("## Table II — qualitative errors of exact-match training\n")
    table2 = suite.run_table2_examples(domain="yugioh", max_rows=3)
    if table2:
        sections.append(markdown_table(table2) + "\n")
    else:
        sections.append("(no qualifying error examples found at this corpus scale on this seed)\n")

    output.write_text("\n".join(sections), encoding="utf-8")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
