#!/usr/bin/env python
"""Run the repro lint gate: exit 0 when clean, 1 on new findings.

Usage::

    python scripts/run_lint.py                      # lint src/ (default)
    python scripts/run_lint.py src tests benchmarks # full gate, as in CI
    python scripts/run_lint.py --changed-only       # pre-commit: only files
                                                    # changed vs origin/main,
                                                    # plus reverse deps
    python scripts/run_lint.py --list-rules         # show registered rules
    python scripts/run_lint.py --format json src    # machine-readable report
    python scripts/run_lint.py --baseline-update src  # rewrite lint_baseline.json

The baseline (``lint_baseline.json`` at the repo root) absorbs
grandfathered findings; only *new* findings fail the gate.  After fixing
baselined code, re-run with ``--baseline-update`` to prune stale entries
(existing justifications are preserved).

The interprocedural rules build a whole-project call graph on every run;
per-file summaries are cached in ``.repro_lint_cache.json`` (content-hash
keyed) so unchanged files cost one hash instead of a parse.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402
    Baseline,
    DEFAULT_BASELINE_NAME,
    LintConfig,
    registered_rules,
    render_json,
    render_rule_table,
    render_text,
    run_lint,
)

#: Summary-cache file name at the repo root (gitignored).
CACHE_NAME = ".repro_lint_cache.json"


def changed_files(base_ref: str) -> list:
    """Repo-relative python files changed vs ``base_ref`` (plus untracked)."""
    out: set = set()
    for cmd in (
        ["git", "diff", "--name-only", base_ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            cmd, cwd=REPO_ROOT, capture_output=True, text=True, check=False,
        )
        if proc.returncode != 0:
            raise SystemExit(
                f"run_lint: {' '.join(cmd)} failed: {proc.stderr.strip()}"
            )
        out.update(
            line.strip() for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return sorted(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule names to run (default: all registered)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=str(REPO_ROOT / DEFAULT_BASELINE_NAME),
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--baseline-update", action="store_true",
        help="rewrite the baseline to cover current findings, keeping "
             "existing justifications, then exit 0",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print findings covered by the baseline (text format)",
    )
    parser.add_argument(
        "--bench-output", default=None, metavar="FILE",
        help="write lint wall time / files-per-second metrics as JSON",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="lint only files changed vs --base-ref (plus untracked files "
             "and their reverse-dependency closure from the call graph)",
    )
    parser.add_argument(
        "--base-ref", default="origin/main", metavar="REF",
        help="git ref --changed-only diffs against (default: origin/main)",
    )
    parser.add_argument(
        "--rule-summary", action="store_true",
        help="print a per-rule table of new-finding counts after the report",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help=f"skip the {CACHE_NAME} summary cache (cold whole-program build)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, cls in sorted(registered_rules().items()):
            print(f"{name}: {cls.description}")
            print(f"    paths: {', '.join(cls.default_paths)}")
        return 0

    enabled = None
    if args.rules:
        enabled = [name.strip() for name in args.rules.split(",") if name.strip()]
    config = LintConfig(
        enabled=enabled,
        project_root=REPO_ROOT,
        cache_path=None if args.no_cache else REPO_ROOT / CACHE_NAME,
    )

    baseline_path = Path(args.baseline)
    baseline = None
    if not args.no_baseline:
        baseline = Baseline.load(baseline_path)

    restrict = None
    if args.changed_only:
        restrict = changed_files(args.base_ref)
        if not restrict:
            print(f"lint: no python files changed vs {args.base_ref}")
            return 0

    result = run_lint(
        args.paths, config=config, baseline=baseline, restrict_paths=restrict,
    )

    if args.bench_output:
        metrics = {
            "lint_wall_seconds": result.elapsed_seconds,
            "lint_files_per_second": result.files_per_second,
            "lint_files_count": result.files,
            "lint_findings_count": len(result.findings) + len(result.baselined),
            "config": {
                "paths": list(args.paths),
                "rules": sorted(registered_rules()) if enabled is None else enabled,
                # Interprocedural pass metrics live under `config` so the
                # regression gate treats them as informational, not gated —
                # cache hit rate flips between cold/warm runs by design.
                "callgraph_build_seconds": result.callgraph_seconds,
                "callgraph_functions": result.functions,
                "callgraph_edges": result.call_edges,
                "summary_cache_hits": result.cache_hits,
                "summary_cache_misses": result.cache_misses,
                "summary_cache_hit_rate": result.cache_hit_rate,
            },
        }
        Path(args.bench_output).write_text(
            json.dumps(metrics, indent=1) + "\n", encoding="utf-8"
        )

    if args.baseline_update:
        previous = baseline if baseline is not None else Baseline.load(baseline_path)
        all_findings = sorted([*result.findings, *result.baselined])
        updated = Baseline.from_findings(all_findings, previous=previous)
        updated.save(baseline_path)
        print(
            f"baseline updated: {len(updated)} entr(y/ies) covering "
            f"{len(all_findings)} finding(s) -> {baseline_path}"
        )
        return 0

    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_text(result, show_baselined=args.show_baselined))
    if args.rule_summary or (args.format == "text" and not result.ok):
        print("\nfindings by rule:")
        print(render_rule_table(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
