#!/usr/bin/env python
"""Run the repro lint gate: exit 0 when clean, 1 on new findings.

Usage::

    python scripts/run_lint.py                      # lint src/ (default)
    python scripts/run_lint.py src tests benchmarks # full gate, as in CI
    python scripts/run_lint.py --list-rules         # show registered rules
    python scripts/run_lint.py --format json src    # machine-readable report
    python scripts/run_lint.py --baseline-update src  # rewrite lint_baseline.json

The baseline (``lint_baseline.json`` at the repo root) absorbs
grandfathered findings; only *new* findings fail the gate.  After fixing
baselined code, re-run with ``--baseline-update`` to prune stale entries
(existing justifications are preserved).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402
    Baseline,
    DEFAULT_BASELINE_NAME,
    LintConfig,
    registered_rules,
    render_json,
    render_text,
    run_lint,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule names to run (default: all registered)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=str(REPO_ROOT / DEFAULT_BASELINE_NAME),
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--baseline-update", action="store_true",
        help="rewrite the baseline to cover current findings, keeping "
             "existing justifications, then exit 0",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print findings covered by the baseline (text format)",
    )
    parser.add_argument(
        "--bench-output", default=None, metavar="FILE",
        help="write lint wall time / files-per-second metrics as JSON",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, cls in sorted(registered_rules().items()):
            print(f"{name}: {cls.description}")
            print(f"    paths: {', '.join(cls.default_paths)}")
        return 0

    enabled = None
    if args.rules:
        enabled = [name.strip() for name in args.rules.split(",") if name.strip()]
    config = LintConfig(enabled=enabled, project_root=REPO_ROOT)

    baseline_path = Path(args.baseline)
    baseline = None
    if not args.no_baseline:
        baseline = Baseline.load(baseline_path)

    result = run_lint(args.paths, config=config, baseline=baseline)

    if args.bench_output:
        metrics = {
            "lint_wall_seconds": result.elapsed_seconds,
            "lint_files_per_second": result.files_per_second,
            "lint_files_count": result.files,
            "lint_findings_count": len(result.findings) + len(result.baselined),
            "config": {
                "paths": list(args.paths),
                "rules": sorted(registered_rules()) if enabled is None else enabled,
            },
        }
        Path(args.bench_output).write_text(
            json.dumps(metrics, indent=1) + "\n", encoding="utf-8"
        )

    if args.baseline_update:
        previous = baseline if baseline is not None else Baseline.load(baseline_path)
        all_findings = sorted([*result.findings, *result.baselined])
        updated = Baseline.from_findings(all_findings, previous=previous)
        updated.save(baseline_path)
        print(
            f"baseline updated: {len(updated)} entr(y/ies) covering "
            f"{len(all_findings)} finding(s) -> {baseline_path}"
        )
        return 0

    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_text(result, show_baselined=args.show_baselined))
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
