"""Quickstart: train MetaBLINK on one few-shot domain and evaluate it.

Run with::

    python examples/quickstart.py

The example generates the synthetic benchmark, builds weak supervision for
the Lego domain (exact matching + mention rewriting), trains MetaBLINK with
the 50-sample seed set and prints the two-stage evaluation metrics next to a
plain BLINK baseline.
"""

from dataclasses import replace

from repro.data import generate_corpus, pairs_from_mentions, split_domain
from repro.eval import evaluate_pipeline, format_table, small_experiment_config
from repro.generation import build_bundle, build_tokenizer_for_corpus
from repro.linking import BlinkPipeline
from repro.meta import MetaBlinkTrainer, few_shot_seed
from repro.serving import EntityLinkingPipeline

DOMAIN = "lego"


def main() -> None:
    config = small_experiment_config(seed=13)
    config = replace(config, corpus=replace(config.corpus, entities_per_domain=24, mentions_per_domain=140))

    print("1. generating the synthetic Zeshel-substitute corpus ...")
    corpus = generate_corpus(config.corpus)
    tokenizer = build_tokenizer_for_corpus(corpus, max_length=config.biencoder.encoder.max_length)
    split = split_domain(corpus, DOMAIN, seed_size=config.seed_size, dev_size=config.dev_size)
    seed_pairs = few_shot_seed(pairs_from_mentions(corpus, DOMAIN, split.train, source="seed"))
    entities = corpus.entities(DOMAIN)

    print("2. building weak supervision (exact match + mention rewriting) ...")
    bundle = build_bundle(
        corpus, DOMAIN, tokenizer=tokenizer, rewriter_config=config.rewriter,
        include_syn_star=False, limit_per_domain=40, seed=config.seed,
    )
    print(f"   synthetic pairs: {bundle.sizes()}")

    print("3. training BLINK on syn+seed (baseline) ...")
    blink = BlinkPipeline(tokenizer, config.biencoder, config.crossencoder)
    blink.train(bundle.syn + seed_pairs, candidate_pool=entities, max_crossencoder_examples=60, seed=0)
    blink_serving = EntityLinkingPipeline.from_blink(blink, entities, k=config.recall_k)
    blink_metrics = evaluate_pipeline(blink_serving, split.test).metrics

    print("4. training MetaBLINK (meta-reweighted syn + seed) ...")
    meta = MetaBlinkTrainer(tokenizer, config.biencoder, config.crossencoder, config.meta)
    meta.train(bundle.syn, seed_pairs, candidate_pool=entities, max_crossencoder_examples=60, seed=0)
    meta_serving = EntityLinkingPipeline.from_blink(meta.pipeline, entities, k=config.recall_k)
    meta_metrics = evaluate_pipeline(meta_serving, split.test).metrics

    rows = [
        {"method": "BLINK (syn+seed)", **blink_metrics.rounded().as_dict()},
        {"method": "MetaBLINK (syn+seed)", **meta_metrics.rounded().as_dict()},
    ]
    print()
    print(format_table(rows, title=f"Few-shot entity linking on the {DOMAIN} domain"))

    print("5. serving a batch through the MetaBLINK pipeline ...")
    results = meta_serving.link(split.test[:5])
    for result in results:
        marker = "+" if result.correct else "-"
        print(f"   [{marker}] {result.surface!r} -> {result.predicted_entity_id} "
              f"(top candidate {result.candidate_ids[0]})")
    stats = meta_serving.stats
    print(f"   pipeline throughput so far: {stats.throughput():.1f} mentions/s "
          f"over {stats.mentions} mentions in {stats.batches} micro-batches")


if __name__ == "__main__":
    main()
