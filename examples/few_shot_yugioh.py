"""Few-shot comparison on the YuGiOh domain (a mini Table VI).

Run with::

    python examples/few_shot_yugioh.py

Trains Name Matching, BLINK (seed / syn+seed) and MetaBLINK on the YuGiOh
domain of the synthetic benchmark and prints a Table VI-style comparison,
followed by the Figure 4 noise-selection analysis.
"""

from dataclasses import replace

from repro.eval import ExperimentSuite, format_table, small_experiment_config


def main() -> None:
    config = small_experiment_config(seed=13)
    config = replace(config, corpus=replace(config.corpus, entities_per_domain=24, mentions_per_domain=140))
    suite = ExperimentSuite(config)

    print("Running the Table VI comparison on YuGiOh (this trains several models) ...")
    rows = suite.run_table5_6(
        domains=["yugioh"],
        methods=["name_matching", "blink_seed", "blink_syn", "blink_syn_seed", "metablink_syn_seed"],
    )
    print(format_table(rows, title="Few-shot entity linking — YuGiOh"))

    print()
    print("Figure 4: can meta-learning tell corrupted synthetic data from normal data?")
    selection = suite.run_figure4_selection(domain="yugioh")
    print(format_table([selection], title="Selection ratio by data source"))


if __name__ == "__main__":
    main()
