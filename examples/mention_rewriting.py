"""Mention rewriting demo: from exact matching to syn / syn* data.

Run with::

    python examples/mention_rewriting.py

Shows the two-stage weak-supervision pipeline on the Lego domain: exact-match
pairs, the mentions the seq2seq rewriter generates for them, and the ROUGE-1
comparison of Table XI (generated mentions are closer to real mention
distribution than raw titles).
"""

from dataclasses import replace

from repro.data import generate_corpus, split_domain
from repro.eval import format_table, small_experiment_config
from repro.generation import (
    build_exact_match_data,
    build_synthetic_data,
    build_tokenizer_for_corpus,
    train_rewriter,
)
from repro.text import corpus_rouge_1_f1

DOMAIN = "lego"


def main() -> None:
    config = small_experiment_config(seed=13)
    config = replace(config, corpus=replace(config.corpus, entities_per_domain=24, mentions_per_domain=140))

    corpus = generate_corpus(config.corpus)
    tokenizer = build_tokenizer_for_corpus(corpus, max_length=config.rewriter.max_source_length)
    split = split_domain(corpus, DOMAIN, seed_size=config.seed_size, dev_size=config.dev_size)

    print("Stage 1 — exact matching (mention surface == entity title):")
    exact_pairs = build_exact_match_data(corpus, DOMAIN, per_entity=1)
    for pair in exact_pairs[:3]:
        print(f"  [{pair.entity.title}] -> mention {pair.mention.surface!r}")

    print("\nStage 2 — training the rewriter on the 8 source domains ...")
    rewriter = train_rewriter(corpus, tokenizer, config=config.rewriter, limit_per_domain=40, seed=0)
    syn_pairs = build_synthetic_data(corpus, DOMAIN, rewriter, exact_pairs=exact_pairs[:12])
    print("rewritten mentions:")
    for pair in syn_pairs[:6]:
        print(f"  [{pair.entity.title}] -> mention {pair.mention.surface!r}")

    golden = [mention.surface for mention in split.test[:30]]
    exact_surfaces = [pair.mention.surface for pair in exact_pairs[:30]]
    syn_surfaces = [pair.mention.surface for pair in syn_pairs]
    rows = [
        {"data": "exact_match", "rouge1_f1_vs_golden": corpus_rouge_1_f1(exact_surfaces[: len(golden)], golden)},
        {"data": "syn", "rouge1_f1_vs_golden": corpus_rouge_1_f1(syn_surfaces, golden[: len(syn_surfaces)])},
    ]
    print()
    print(format_table(rows, title="Table XI-style ROUGE-1 comparison"))


if __name__ == "__main__":
    main()
