"""Unit tests for the meta-learning core (reweighting, seeds, MetaBLINK)."""

import numpy as np
import pytest

from repro.data import pairs_from_mentions, split_domain
from repro.generation import build_exact_match_data, mix_with_noise
from repro.linking import BiEncoder, BiEncoderTrainer
from repro.meta import (
    ExampleReweighter,
    MetaBiEncoderTrainer,
    MetaBlinkTrainer,
    build_zero_shot_seed,
    few_shot_seed,
    filter_synthetic_for_seed,
    normalize_weights,
    self_match_pairs,
)
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig, MetaConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)
META_JVP = MetaConfig(use_exact_per_example_gradients=False)
META_EXACT = MetaConfig(use_exact_per_example_gradients=True)


@pytest.fixture(scope="module")
def meta_data(tiny_corpus):
    domain = "yugioh"
    split = split_domain(tiny_corpus, domain, seed_size=20, dev_size=10)
    seed_pairs = few_shot_seed(pairs_from_mentions(tiny_corpus, domain, split.train, source="seed"))
    synthetic = build_exact_match_data(tiny_corpus, domain, per_entity=2)
    entities = tiny_corpus.entities(domain)
    return domain, split, seed_pairs, synthetic, entities


def make_reweighter(tokenizer, entities, config):
    model = BiEncoder(BI_CFG, tokenizer)
    negatives = entities[:8]
    return model, ExampleReweighter(
        model,
        lambda pairs, reduction="sum": model.pairs_loss_with_negatives(pairs, negatives, reduction=reduction),
        config,
    )


class TestNormalizeWeights:
    def test_clips_negatives_and_normalises(self):
        weights = normalize_weights(np.array([1.0, -2.0, 3.0]))
        assert weights[1] == 0.0
        assert weights.sum() == pytest.approx(1.0)

    def test_all_negative_returns_zeros(self):
        assert np.allclose(normalize_weights(np.array([-1.0, -2.0])), 0.0)

    def test_preserves_relative_magnitude(self):
        weights = normalize_weights(np.array([1.0, 3.0]))
        assert weights[1] == pytest.approx(3 * weights[0])


class TestExampleReweighter:
    def test_weights_sum_to_one_or_zero(self, meta_data, tiny_tokenizer):
        _, _, seed_pairs, synthetic, entities = meta_data
        _, reweighter = make_reweighter(tiny_tokenizer, entities, META_JVP)
        result = reweighter.compute_weights(synthetic[:8], seed_pairs[:8])
        assert result.weights.shape == (8,)
        assert result.weights.sum() == pytest.approx(1.0) or result.weights.sum() == 0.0
        assert np.all(result.weights >= 0.0)

    def test_exact_and_jvp_paths_agree(self, meta_data, tiny_tokenizer):
        _, _, seed_pairs, synthetic, entities = meta_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities, META_EXACT)
        # train a little so gradients are informative
        BiEncoderTrainer(model, BI_CFG).fit(seed_pairs, epochs=1, seed=0)
        exact = reweighter.compute_weights(synthetic[:6], seed_pairs[:6], exact=True)
        jvp = reweighter.compute_weights(synthetic[:6], seed_pairs[:6], exact=False)
        # Raw gradient signals should be strongly correlated between the two paths.
        if np.std(exact.raw_gradients) > 0 and np.std(jvp.raw_gradients) > 0:
            correlation = np.corrcoef(exact.raw_gradients, jvp.raw_gradients)[0, 1]
            assert correlation > 0.9

    def test_parameters_restored_after_jvp(self, meta_data, tiny_tokenizer):
        _, _, seed_pairs, synthetic, entities = meta_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities, META_JVP)
        before = model.flatten_parameters()
        reweighter.compute_weights(synthetic[:4], seed_pairs[:4])
        assert np.allclose(before, model.flatten_parameters())

    def test_empty_batches_rejected(self, meta_data, tiny_tokenizer):
        _, _, seed_pairs, synthetic, entities = meta_data
        _, reweighter = make_reweighter(tiny_tokenizer, entities, META_JVP)
        with pytest.raises(ValueError):
            reweighter.compute_weights([], seed_pairs[:4])
        with pytest.raises(ValueError):
            reweighter.compute_weights(synthetic[:4], [])

    def test_noise_selected_less_than_normal(self, meta_data, tiny_tokenizer):
        _, _, seed_pairs, synthetic, entities = meta_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities, META_JVP)
        BiEncoderTrainer(model, BI_CFG).fit(synthetic + seed_pairs, epochs=2, seed=0)
        mixed = mix_with_noise(synthetic, entities, fraction=0.5, seed=3)
        ratios = reweighter.selection_ratio_by_source(mixed, seed_pairs, batch_size=8, seed=0)
        assert set(ratios) == {"exact_match", "noise"}
        assert ratios["noise"] <= ratios["exact_match"]


class TestSeedConstruction:
    def test_few_shot_seed_marks_source(self, meta_data):
        _, _, seed_pairs, _, _ = meta_data
        assert all(pair.source == "seed" for pair in seed_pairs)

    def test_few_shot_seed_truncates(self, meta_data):
        _, _, seed_pairs, _, _ = meta_data
        assert len(few_shot_seed(seed_pairs, size=5)) == 5

    def test_filter_removes_title_copies(self, meta_data):
        _, _, _, synthetic, _ = meta_data
        filtered = filter_synthetic_for_seed(synthetic)
        for pair in filtered:
            assert pair.mention.surface.lower() != pair.entity.title.lower()

    def test_self_match_requires_disambiguation(self, meta_data):
        _, _, _, _, entities = meta_data
        pairs = self_match_pairs(entities)
        for pair in pairs:
            assert "(" in pair.entity.title
            assert pair.mention.surface.lower() in pair.entity.description.lower()

    def test_zero_shot_seed_size(self, meta_data):
        _, _, _, synthetic, entities = meta_data
        seed = build_zero_shot_seed(synthetic, entities, size=10, seed=1)
        assert 0 < len(seed) <= 10

    def test_zero_shot_seed_validation(self, meta_data):
        _, _, _, synthetic, entities = meta_data
        with pytest.raises(ValueError):
            build_zero_shot_seed(synthetic, entities, size=0)


class TestMetaTrainers:
    def test_meta_biencoder_training_runs(self, meta_data, tiny_tokenizer):
        _, _, seed_pairs, synthetic, entities = meta_data
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        trainer = MetaBiEncoderTrainer(model, BI_CFG, META_JVP, negative_entities=entities[:8])
        history = trainer.fit(synthetic[:24], seed_pairs, epochs=1, seed=0)
        assert len(history.series("loss")) == 1
        assert 0.0 <= history.last("selected_fraction") <= 1.0

    def test_meta_biencoder_validation(self, meta_data, tiny_tokenizer):
        _, _, seed_pairs, synthetic, _ = meta_data
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        trainer = MetaBiEncoderTrainer(model, BI_CFG, META_JVP)
        with pytest.raises(ValueError):
            trainer.fit([], seed_pairs)
        with pytest.raises(ValueError):
            trainer.fit(synthetic[:4], [])

    def test_weighted_update_uses_reweighter_loss(self, meta_data, tiny_tokenizer, monkeypatch):
        # Regression (Alg. 1 / Eq. 15): the weighted parameter update must be
        # taken under the same fixed-negative loss the reweighter derived the
        # weights for.  With a negative pool configured, nothing in fit() may
        # fall back to the in-batch loss.
        _, _, seed_pairs, synthetic, entities = meta_data
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        trainer = MetaBiEncoderTrainer(model, BI_CFG, META_JVP, negative_entities=entities[:8])

        in_batch_calls = []
        fixed_negative_batches = []
        original = BiEncoder.pairs_loss_with_negatives

        def record_in_batch(self, pairs, reduction="mean"):
            in_batch_calls.append(len(pairs))
            raise AssertionError("fit() used the in-batch loss despite a negative pool")

        def record_fixed(self, pairs, negatives, reduction="mean"):
            fixed_negative_batches.append([pair.weight for pair in pairs])
            return original(self, pairs, negatives, reduction=reduction)

        monkeypatch.setattr(BiEncoder, "pairs_loss", record_in_batch)
        monkeypatch.setattr(BiEncoder, "pairs_loss_with_negatives", record_fixed)
        history = trainer.fit(synthetic[:16], seed_pairs, epochs=1, seed=0)
        assert in_batch_calls == []
        # The update path passes the *reweighted* batch through the same loss:
        # at least one recorded batch carries non-uniform meta weights.
        assert any(
            any(weight != 1.0 for weight in weights) for weights in fixed_negative_batches
        )
        assert len(history.series("loss")) == 1

    def test_metablink_end_to_end(self, meta_data, tiny_tokenizer):
        domain, split, seed_pairs, synthetic, entities = meta_data
        trainer = MetaBlinkTrainer(tiny_tokenizer, BI_CFG, CX_CFG, META_JVP)
        report = trainer.train(
            synthetic[:24], seed_pairs, candidate_pool=entities,
            max_crossencoder_examples=8, seed=0,
        )
        assert report.biencoder_loss is not None
        assert report.crossencoder_loss is not None
        assert 0.0 <= report.mean_selected_fraction <= 1.0
        predictions = trainer.predict(split.test[:6], entities, k=4)
        assert len(predictions) == 6

    def test_metablink_without_crossencoder(self, meta_data, tiny_tokenizer):
        _, _, seed_pairs, synthetic, entities = meta_data
        trainer = MetaBlinkTrainer(tiny_tokenizer, BI_CFG, CX_CFG, META_JVP)
        report = trainer.train(
            synthetic[:16], seed_pairs, candidate_pool=entities,
            train_crossencoder=False, finetune_on_seed=False, seed=0,
        )
        assert report.crossencoder_loss is None
