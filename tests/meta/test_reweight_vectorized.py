"""Tests for the vectorized reweighting paths and the fixed JVP estimator."""

import numpy as np
import pytest

from repro.data import pairs_from_mentions, split_domain
from repro.generation import build_exact_match_data
from repro.linking import BiEncoder
from repro.meta import ExampleReweighter, few_shot_seed, normalize_weights
from repro.training import BiEncoderMetaTask
from repro.utils.config import BiEncoderConfig, EncoderConfig, MetaConfig

# Dropout deliberately on: the probes must be immune to it (they run in eval
# mode), which is exactly what the JVP fix is about.
ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32,
                    max_length=32, dropout=0.2)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)


@pytest.fixture(scope="module")
def reweight_data(tiny_corpus):
    domain = "yugioh"
    split = split_domain(tiny_corpus, domain, seed_size=20, dev_size=10)
    seed_pairs = few_shot_seed(pairs_from_mentions(tiny_corpus, domain, split.train, source="seed"))
    synthetic = build_exact_match_data(tiny_corpus, domain, per_entity=2)
    entities = tiny_corpus.entities(domain)
    return seed_pairs, synthetic, entities


def make_reweighter(tokenizer, entities, config=None):
    model = BiEncoder(BI_CFG, tokenizer)
    task = BiEncoderMetaTask(model, entities[:8])
    return model, ExampleReweighter(model, task, config or MetaConfig())


class TestNormalizeWeightsEdgeCases:
    def test_all_negative_returns_zeros(self):
        assert np.allclose(normalize_weights(np.array([-1.0, -0.5, -3.0])), 0.0)

    def test_single_positive_example_gets_full_weight(self):
        assert np.allclose(normalize_weights(np.array([5.0])), [1.0])

    def test_single_negative_example_gets_zero(self):
        assert np.allclose(normalize_weights(np.array([-5.0])), [0.0])

    def test_empty_input(self):
        assert normalize_weights(np.array([])).size == 0


class TestExactBlockedPath:
    def test_blocked_matches_per_example_loop(self, reweight_data, tiny_tokenizer):
        """Every probe block size must reproduce the one-example-at-a-time dots."""
        seed_pairs, synthetic, entities = reweight_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities)
        seed_grad = reweighter.seed_gradient(seed_pairs[:8])
        batch = synthetic[:10]
        reference = reweighter.per_example_gradient_dots(batch, seed_grad, block_size=1)
        for block_size in (2, 3, 10, 64):
            blocked = reweighter.per_example_gradient_dots(batch, seed_grad, block_size=block_size)
            assert np.allclose(blocked, reference, rtol=1e-9, atol=1e-9), block_size

    def test_training_mode_restored_and_grads_cleared(self, reweight_data, tiny_tokenizer):
        seed_pairs, synthetic, entities = reweight_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities)
        model.train()
        seed_grad = reweighter.seed_gradient(seed_pairs[:8])
        reweighter.per_example_gradient_dots(synthetic[:6], seed_grad)
        assert model.training, "probes must restore training mode"
        assert all(p.grad is None for p in model.parameters())


class TestJvpEstimator:
    def test_first_order_agreement_with_exact_under_dropout(self, reweight_data, tiny_tokenizer):
        """JVP dots must match exact dots to first order despite dropout layers."""
        seed_pairs, synthetic, entities = reweight_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities)
        model.train()  # training mode on purpose: probes must neutralise it
        seed_grad = reweighter.seed_gradient(seed_pairs[:8])
        batch = synthetic[:10]
        exact = reweighter.per_example_gradient_dots(batch, seed_grad)
        jvp = reweighter.jvp_gradient_dots(batch, seed_grad)
        scale = np.abs(exact).max()
        assert scale > 0
        assert np.abs(jvp - exact).max() <= 0.1 * scale
        assert np.corrcoef(exact, jvp)[0, 1] > 0.99

    def test_deterministic_under_dropout(self, reweight_data, tiny_tokenizer):
        """Two JVP evaluations must agree exactly — no fresh dropout masks."""
        seed_pairs, synthetic, entities = reweight_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities)
        model.train()
        seed_grad = reweighter.seed_gradient(seed_pairs[:8])
        first = reweighter.jvp_gradient_dots(synthetic[:6], seed_grad)
        second = reweighter.jvp_gradient_dots(synthetic[:6], seed_grad)
        assert np.array_equal(first, second)

    def test_unit_direction_keeps_large_gradients_linear(self, reweight_data, tiny_tokenizer):
        """Scaling the seed gradient by 1e3 must scale the dots by exactly 1e3.

        The unnormalised estimator stepped ``ε·g``, so a large ‖g‖ pushed the
        probe outside the linear regime; the unit-direction step makes the
        estimate exactly homogeneous in ‖g‖.
        """
        seed_pairs, synthetic, entities = reweight_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities)
        seed_grad = reweighter.seed_gradient(seed_pairs[:8])
        base = reweighter.jvp_gradient_dots(synthetic[:6], seed_grad)
        scaled = reweighter.jvp_gradient_dots(synthetic[:6], 1e3 * seed_grad)
        assert np.allclose(scaled, 1e3 * base, rtol=1e-9)

    def test_parameters_and_mode_restored(self, reweight_data, tiny_tokenizer):
        seed_pairs, synthetic, entities = reweight_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities)
        model.train()
        before = model.flatten_parameters()
        seed_grad = reweighter.seed_gradient(seed_pairs[:8])
        reweighter.jvp_gradient_dots(synthetic[:6], seed_grad)
        assert np.array_equal(before, model.flatten_parameters())
        assert model.training

    def test_zero_seed_gradient_short_circuits(self, reweight_data, tiny_tokenizer):
        _, synthetic, entities = reweight_data
        model, reweighter = make_reweighter(tiny_tokenizer, entities)
        dots = reweighter.jvp_gradient_dots(synthetic[:5], np.zeros(model.num_parameters()))
        assert np.array_equal(dots, np.zeros(5))
