"""Unit tests for the synthetic Zeshel corpus generator and splits."""

import numpy as np
import pytest

from repro.data import (
    CATEGORY_PROPORTIONS,
    DEV_DOMAINS,
    OverlapCategory,
    TEST_DOMAINS,
    TRAIN_DOMAINS,
    WORLDS,
    ZeshelGenerator,
    category_distribution,
    categorize,
    corpus_summary,
    domains_for_split,
    generate_corpus,
    get_world,
    load_corpus,
    pairs_from_mentions,
    sample_training_subset,
    save_corpus,
    split_all_test_domains,
    split_domain,
    table4_rows,
)
from repro.utils.config import CorpusConfig


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(CorpusConfig(entities_per_domain=40, mentions_per_domain=140, seed=7))


class TestWorldSpecs:
    def test_sixteen_domains(self):
        assert len(WORLDS) == 16

    def test_split_sizes_match_paper(self):
        assert len(TRAIN_DOMAINS) == 8
        assert len(DEV_DOMAINS) == 4
        assert len(TEST_DOMAINS) == 4

    def test_test_domains_are_papers(self):
        assert set(TEST_DOMAINS) == {"forgotten_realms", "lego", "star_trek", "yugioh"}

    def test_gap_ordering_matches_table8(self):
        # Lego / YuGiOh must be "far" domains, Forgotten Realms / Star Trek "near".
        assert get_world("lego").gap > get_world("forgotten_realms").gap
        assert get_world("yugioh").gap > get_world("star_trek").gap

    def test_unknown_domain_raises(self):
        with pytest.raises(KeyError):
            get_world("narnia")

    def test_domains_for_split_validation(self):
        with pytest.raises(ValueError):
            domains_for_split("bogus")


class TestCategorize:
    def test_high_overlap(self):
        assert categorize("Golden Master", "Golden Master") == OverlapCategory.HIGH_OVERLAP

    def test_multiple_categories(self):
        assert categorize("SORA", "SORA (satellite)") == OverlapCategory.MULTIPLE_CATEGORIES

    def test_ambiguous_substring(self):
        assert categorize("Master", "Golden Master") == OverlapCategory.AMBIGUOUS_SUBSTRING

    def test_low_overlap(self):
        assert categorize("the old one", "Golden Master") == OverlapCategory.LOW_OVERLAP

    def test_title_with_phrase_exact_match_is_high(self):
        assert categorize("SORA (satellite)", "SORA (satellite)") == OverlapCategory.HIGH_OVERLAP


class TestGeneratedCorpus:
    def test_all_domains_present(self, small_corpus):
        assert set(small_corpus.domains) == set(WORLDS)

    def test_mentions_link_to_domain_entities(self, small_corpus):
        for domain in TEST_DOMAINS:
            index = small_corpus.domain(domain).entity_index
            for mention in small_corpus.mentions(domain):
                assert mention.gold_entity_id in index

    def test_entity_ids_unique_across_corpus(self, small_corpus):
        ids = [entity.entity_id for entity in small_corpus.kb]
        assert len(ids) == len(set(ids))

    def test_deterministic_given_seed(self):
        config = CorpusConfig(entities_per_domain=20, mentions_per_domain=50, seed=3)
        first = ZeshelGenerator(config).generate(domains=["lego"])
        second = ZeshelGenerator(config).generate(domains=["lego"])
        assert [e.title for e in first.entities("lego")] == [e.title for e in second.entities("lego")]
        assert [m.surface for m in first.mentions("lego")] == [m.surface for m in second.mentions("lego")]

    def test_different_seeds_differ(self):
        first = ZeshelGenerator(CorpusConfig(entities_per_domain=20, mentions_per_domain=50, seed=1)).generate(["lego"])
        second = ZeshelGenerator(CorpusConfig(entities_per_domain=20, mentions_per_domain=50, seed=2)).generate(["lego"])
        assert [e.title for e in first.entities("lego")] != [e.title for e in second.entities("lego")]

    def test_low_overlap_is_majority_category(self, small_corpus):
        pairs = [(p.mention, p.entity) for p in small_corpus.pairs("yugioh")]
        distribution = category_distribution(pairs)
        assert distribution[OverlapCategory.LOW_OVERLAP] == max(distribution.values())

    def test_category_proportions_sum_to_one(self):
        assert sum(CATEGORY_PROPORTIONS.values()) == pytest.approx(1.0)

    def test_entity_scale_ordering(self, small_corpus):
        stats = small_corpus.statistics()
        assert stats["military"]["entities"] > stats["lego"]["entities"]
        assert stats["star_trek"]["entities"] > stats["yugioh"]["entities"]

    def test_descriptions_mention_keywords_in_context(self, small_corpus):
        # At least some mentions should share a content word with the gold
        # entity description; this is what makes linking learnable.
        shared = 0
        pairs = small_corpus.pairs("lego")
        for pair in pairs:
            description_tokens = set(pair.entity.description.lower().split())
            context_tokens = set(pair.mention.context.lower().split())
            if description_tokens & context_tokens - {"the", "of", "a", "in"}:
                shared += 1
        assert shared / len(pairs) > 0.5

    def test_documents_exist_for_every_domain(self, small_corpus):
        assert set(small_corpus.documents.domains()) == set(WORLDS)
        assert len(small_corpus.documents.texts("lego")) > 0

    def test_kb_triples_within_domain(self, small_corpus):
        for triple in small_corpus.kb.triples()[:200]:
            head_domain = small_corpus.kb.get(triple.head).domain
            tail_domain = small_corpus.kb.get(triple.tail).domain
            assert head_domain == tail_domain

    def test_all_texts_nonempty(self, small_corpus):
        texts = small_corpus.all_texts()
        assert len(texts) > 1000
        assert all(isinstance(t, str) for t in texts[:50])

    def test_unknown_domain_raises(self, small_corpus):
        with pytest.raises(KeyError):
            small_corpus.domain("narnia")

    def test_corpus_summary_rows(self, small_corpus):
        rows = corpus_summary(small_corpus)
        assert len(rows) == 16
        assert {"domain", "split", "entities", "mentions", "documents"} <= set(rows[0])


class TestFewShotSplits:
    def test_split_sizes(self, small_corpus):
        split = split_domain(small_corpus, "lego", seed_size=50, dev_size=50)
        assert split.sizes()["train"] == 50
        assert split.sizes()["dev"] == 50
        assert split.sizes()["test"] == len(small_corpus.mentions("lego")) - 100

    def test_split_partitions_are_disjoint(self, small_corpus):
        split = split_domain(small_corpus, "yugioh")
        ids = [m.mention_id for m in split.train + split.dev + split.test]
        assert len(ids) == len(set(ids))

    def test_split_train_marked_as_seed(self, small_corpus):
        split = split_domain(small_corpus, "lego")
        assert all(m.source == "seed" for m in split.train)

    def test_split_requires_enough_mentions(self):
        corpus = generate_corpus(CorpusConfig(entities_per_domain=10, mentions_per_domain=30), domains=["lego"])
        with pytest.raises(ValueError):
            split_domain(corpus, "lego", seed_size=50, dev_size=50)

    def test_split_all_test_domains(self, small_corpus):
        splits = split_all_test_domains(small_corpus)
        assert set(splits) == set(TEST_DOMAINS)

    def test_table4_rows(self, small_corpus):
        rows = table4_rows(split_all_test_domains(small_corpus))
        assert len(rows) == 4
        assert all(row["train"] == 50 for row in rows)

    def test_sample_training_subset_small(self, small_corpus):
        split = split_domain(small_corpus, "lego")
        subset = sample_training_subset(split, 10, small_corpus)
        assert len(subset) == 10

    def test_sample_training_subset_large_draws_from_test(self, small_corpus):
        split = split_domain(small_corpus, "lego")
        subset = sample_training_subset(split, 80, small_corpus)
        assert len(subset) == 80
        assert len({m.mention_id for m in subset}) == 80

    def test_sample_training_subset_too_large(self, small_corpus):
        split = split_domain(small_corpus, "lego")
        with pytest.raises(ValueError):
            sample_training_subset(split, 10_000, small_corpus)

    def test_pairs_from_mentions(self, small_corpus):
        split = split_domain(small_corpus, "lego")
        pairs = pairs_from_mentions(small_corpus, "lego", split.train, source="seed")
        assert len(pairs) == 50
        assert all(pair.source == "seed" for pair in pairs)


class TestPersistence:
    def test_save_load_roundtrip(self, small_corpus, tmp_path):
        path = save_corpus(small_corpus, tmp_path / "corpus.json")
        restored = load_corpus(path)
        assert set(restored.domains) == set(small_corpus.domains)
        assert len(restored.kb) == len(small_corpus.kb)
        assert [m.surface for m in restored.mentions("lego")] == [
            m.surface for m in small_corpus.mentions("lego")
        ]

    def test_load_rejects_unknown_version(self, small_corpus, tmp_path):
        path = save_corpus(small_corpus, tmp_path / "corpus.json")
        text = path.read_text().replace('"format_version": 1', '"format_version": 99')
        path.write_text(text)
        with pytest.raises(ValueError):
            load_corpus(path)
