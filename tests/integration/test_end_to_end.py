"""Integration tests: the full MetaBLINK workflow on a tiny configuration."""

from dataclasses import replace

import pytest

from repro.eval import ExperimentSuite, compute_metrics, small_experiment_config
from repro.eval.experiments import small_experiment_config as _cfg


@pytest.fixture(scope="module")
def tiny_suite():
    config = small_experiment_config(seed=7)
    config = replace(
        config,
        corpus=replace(config.corpus, entities_per_domain=20, mentions_per_domain=120),
        biencoder=replace(config.biencoder, epochs=1),
        crossencoder=replace(config.crossencoder, epochs=1),
        seed_size=20,
        dev_size=10,
        recall_k=4,
    )
    return ExperimentSuite(config)


class TestExperimentSuiteCaching:
    def test_corpus_and_tokenizer_are_cached(self, tiny_suite):
        assert tiny_suite.corpus is tiny_suite.corpus
        assert tiny_suite.tokenizer is tiny_suite.tokenizer

    def test_bundle_is_cached_per_domain(self, tiny_suite):
        first = tiny_suite.bundle("yugioh", include_syn_star=False)
        second = tiny_suite.bundle("yugioh", include_syn_star=False)
        assert first is second
        assert first.sizes()["syn"] == first.sizes()["exact_match"]

    def test_splits_cover_all_test_domains(self, tiny_suite):
        assert set(tiny_suite.splits) == {"forgotten_realms", "lego", "star_trek", "yugioh"}


class TestStaticExperiments:
    def test_table3_lists_all_sixteen_domains(self, tiny_suite):
        rows = tiny_suite.run_table3_statistics()
        assert len(rows) == 16
        assert {row["split"] for row in rows} == {"train", "dev", "test"}

    def test_table4_split_sizes(self, tiny_suite):
        rows = tiny_suite.run_table4_splits()
        assert len(rows) == 4
        assert all(row["train"] == 20 for row in rows)

    def test_table11_rouge_direction(self, tiny_suite):
        rows = tiny_suite.run_table11_rouge(domains=["yugioh"], sample_size=30)
        row = rows[0]
        # Rewritten mentions should look more like natural mentions than raw titles.
        assert row["syn"] >= row["exact_match"]


class TestTrainedExperiments:
    def test_figure1_shape(self, tiny_suite):
        rows = tiny_suite.run_figure1(domain="yugioh", sizes=(0, 20))
        assert [row["train_size"] for row in rows] == [0, 20]
        trained = rows[-1]["unnormalized_accuracy"]
        untrained = rows[0]["unnormalized_accuracy"]
        assert trained >= untrained

    def test_figure4_selection_ratios(self, tiny_suite):
        result = tiny_suite.run_figure4_selection(domain="yugioh")
        assert set(result) == {"normal_selected_ratio", "bad_selected_ratio"}
        assert 0.0 <= result["bad_selected_ratio"] <= 1.0
        assert result["bad_selected_ratio"] <= result["normal_selected_ratio"] + 0.15

    def test_table5_rows_well_formed(self, tiny_suite):
        rows = tiny_suite.run_table5_6(
            domains=["yugioh"], methods=["name_matching", "blink_seed", "metablink_syn_seed"]
        )
        assert len(rows) == 3
        for row in rows:
            assert 0.0 <= row["unnormalized_accuracy"] <= 100.0
        meta_row = rows[-1]
        assert meta_row["method"] == "metablink_syn_seed"
        assert meta_row["recall"] > 0.0

    def test_metrics_consistency_on_pipeline_output(self, tiny_suite):
        domain = "lego"
        seed_pairs = tiny_suite.seed_pairs(domain)
        pipeline = tiny_suite.train_blink(seed_pairs, domain, seed=0)
        predictions = pipeline.predict(
            tiny_suite.splits[domain].test[:20], tiny_suite.corpus.entities(domain), k=4
        )
        metrics = compute_metrics(predictions)
        assert metrics.num_examples == 20
        assert metrics.unnormalized_accuracy <= metrics.recall + 1e-9
