"""IVFShard: parity with the exact index, recall, rank stability, mutation."""

import threading

import numpy as np
import pytest

from repro.eval import recall_at_k
from repro.index import IVFBackend, IVFShard, default_num_cells, kmeans
from repro.kb import Entity
from repro.linking import EntityIndex, ShardedEntityIndex


def make_entities(world, count):
    return [
        Entity(
            entity_id=f"{world}:{index}",
            title=f"{world} entity {index}",
            description=f"description {index}",
            domain=world,
        )
        for index in range(count)
    ]


@pytest.fixture
def kb():
    rng = np.random.default_rng(3)
    entities = make_entities("w", 120)
    vectors = rng.normal(size=(120, 16))
    return entities, vectors


@pytest.fixture
def queries():
    return np.random.default_rng(4).normal(size=(10, 16))


class TestKMeans:
    def test_deterministic(self):
        vectors = np.random.default_rng(0).normal(size=(50, 8))
        c1, a1 = kmeans(vectors, 7, seed=5)
        c2, a2 = kmeans(vectors, 7, seed=5)
        assert np.array_equal(c1, c2) and np.array_equal(a1, a2)

    def test_no_empty_cells_when_points_suffice(self):
        vectors = np.random.default_rng(1).normal(size=(60, 4))
        _, assignments = kmeans(vectors, 8, seed=0)
        assert len(np.unique(assignments)) == 8

    def test_default_num_cells(self):
        assert default_num_cells(0) == 1
        assert default_num_cells(1) == 1
        assert default_num_cells(100) == 10
        assert default_num_cells(100_000) == 316

    def test_assignments_match_returned_centroids(self):
        """Heavily duplicated points force empty cells and re-seeding; the
        returned assignments must be the nearest-centroid assignment of the
        *returned* centroids, or a re-seeded cell sits directly on a real
        point while its inverted list is empty (a deterministic recall
        hole for queries matching that point)."""
        rng = np.random.default_rng(2)
        vectors = np.repeat(rng.normal(size=(5, 4)), 12, axis=0)
        centroids, assignments = kmeans(vectors, 20, seed=0)
        scores = vectors @ centroids.T
        norms = np.einsum("cd,cd->c", centroids, centroids)
        expected = np.argmin(norms[None, :] - 2.0 * scores, axis=1)
        assert np.array_equal(assignments, expected)


class TestExactParity:
    def test_full_probe_no_quantization_matches_exact(self, kb, queries):
        """Acceptance criterion: nprobe = all cells + float64 == exact."""
        entities, vectors = kb
        exact = EntityIndex(entities, vectors)
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=10)
        exact_results = exact.search(queries, k=12)
        ivf_results = shard.search(queries, k=12)
        for a, b in zip(exact_results, ivf_results):
            assert a.entity_ids == b.entity_ids
            assert np.allclose(a.scores, b.scores, atol=1e-12)

    def test_parity_through_sharded_index(self, queries):
        rng = np.random.default_rng(9)
        entities = make_entities("a", 60) + make_entities("b", 40)
        table = {e.entity_id: rng.normal(size=16) for e in entities}
        embed = lambda chunk: np.stack([table[e.entity_id] for e in chunk])
        exact = ShardedEntityIndex.from_entities(entities, embed_fn=embed)
        ivf = ShardedEntityIndex.from_entities(
            entities, embed_fn=embed, backend=IVFBackend(nprobe=10**9)
        )
        for a, b in zip(exact.search(queries, k=8), ivf.search(queries, k=8)):
            assert a.entity_ids == b.entity_ids

    def test_partial_probe_recall_reasonable(self, kb, queries):
        entities, vectors = kb
        exact = EntityIndex(entities, vectors)
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=6)
        recall = recall_at_k(shard.search(queries, k=10), exact.search(queries, k=10))
        assert recall >= 0.5  # random gaussian data is the worst case

    def test_rescoring_rank_stability_under_int8(self, kb, queries):
        """Re-scored ranking is exact *over the probed candidates*: with all
        cells probed, int8 ranks match a brute-force ranking of the decoded
        (quantized) matrix, so quantization error never reorders re-scoring."""
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=10, codec="int8")
        decoded = shard._state.storage.to_dense()
        reference = EntityIndex(entities, decoded)
        for a, b in zip(shard.search(queries, k=12), reference.search(queries, k=12)):
            assert a.entity_ids == b.entity_ids

    def test_int8_topk_overlaps_exact(self, kb, queries):
        entities, vectors = kb
        exact = EntityIndex(entities, vectors)
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=10, codec="int8")
        recall = recall_at_k(shard.search(queries, k=10), exact.search(queries, k=10))
        assert recall >= 0.9  # int8 noise may swap distant neighbours only


class TestSearchShapes:
    def test_padding_when_probed_cells_are_small(self, kb):
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=30, nprobe=1)
        scores, positions = shard.search_arrays(vectors[:3], k=50)
        assert (positions < 0).any()  # one cell rarely holds 50 entities
        assert np.all(scores[positions < 0] == -np.inf)
        # RetrievalResult rows never contain padding.
        for result in shard.search(vectors[:3], k=50):
            assert "-1" not in result.entity_ids
            assert len(result) <= 50

    def test_deterministic_across_calls(self, kb, queries):
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=3)
        first = shard.search(queries, k=5)
        second = shard.search(queries, k=5)
        for a, b in zip(first, second):
            assert a.entity_ids == b.entity_ids


class TestSnapshotConsistency:
    def test_search_arrays_with_ids_matches_positions(self, kb, queries):
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=30, nprobe=1)
        _, positions, ids = shard.search_arrays_with_ids(queries, k=50)
        assert ids.shape == positions.shape
        for position, entity_id in zip(positions.ravel(), ids.ravel()):
            if position < 0:
                assert entity_id is None
            else:
                assert entity_id == shard.entity_id_at(int(position))

    def test_exact_shard_search_arrays_with_ids(self, kb, queries):
        entities, vectors = kb
        exact = EntityIndex(entities, vectors)
        _, positions, ids = exact.search_arrays_with_ids(queries, k=7)
        for position, entity_id in zip(positions.ravel(), ids.ravel()):
            assert entity_id == exact.entity_id_at(int(position))

    def test_compact_mid_search_resolves_captured_generation(
        self, kb, monkeypatch
    ):
        """A compact() landing between scoring and id resolution must not
        remap positions: both steps read the state captured at call time.
        The pending-tail position here exceeds every range of the compacted
        generation, so resolving through the wrong state would raise or
        return a wrong id."""
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=10)
        new = Entity(entity_id="w:new", title="new", description="d", domain="w")
        target = np.full((1, 16), 5.0)
        shard.add([new], target)
        shard.remove([entities[0].entity_id])

        inner = IVFShard._search_arrays

        def racing(self, state, query_vectors, k):
            result = inner(self, state, query_vectors, k)
            self.compact()  # generation swap before ids are resolved
            return result

        monkeypatch.setattr(IVFShard, "_search_arrays", racing)
        assert shard.search(target, k=1)[0].entity_ids == ["w:new"]
        _, _, ids = shard.search_arrays_with_ids(target, k=1)
        assert ids[0][0] == "w:new"
        assert shard.retrieve_entities(target, k=1)[0][0].entity_id == "w:new"

    def test_fanout_merge_resolves_ids_atomically(self, monkeypatch):
        """The sharded fan-out merge must take ids from the shard's own
        atomic search, not re-resolve positions after the fact."""
        rng = np.random.default_rng(9)
        entities = make_entities("a", 40) + make_entities("b", 30)
        table = {e.entity_id: rng.normal(size=16) for e in entities}
        embed = lambda chunk: np.stack([table[e.entity_id] for e in chunk])
        index = ShardedEntityIndex.from_entities(
            entities, embed_fn=embed, backend=IVFBackend(nprobe=10**9)
        )
        for world in index.worlds():
            index.shard(world)
        new = Entity(entity_id="a:new", title="n", description="d", domain="a")
        target = np.full((1, 16), 5.0)
        index.add_entities([new], target)

        inner = IVFShard._search_arrays

        def racing(self, state, query_vectors, k):
            result = inner(self, state, query_vectors, k)
            self.compact()
            return result

        monkeypatch.setattr(IVFShard, "_search_arrays", racing)
        assert index.search(target, k=1)[0].entity_ids == ["a:new"]


class TestMutation:
    def test_added_entities_searchable_immediately(self, kb):
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=2)
        new = Entity(entity_id="w:new", title="new", description="d", domain="w")
        vector = np.full((1, 16), 5.0)
        shard.add([new], vector)
        assert shard.num_pending == 1
        assert "w:new" in shard
        result = shard.search(vector, k=1)[0]
        assert result.entity_ids == ["w:new"]

    def test_add_duplicate_rejected(self, kb):
        entities, vectors = kb
        shard = IVFShard(entities, vectors)
        with pytest.raises(ValueError, match="update"):
            shard.add([entities[0]], vectors[:1])

    def test_remove_tombstones(self, kb, queries):
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=10)
        shard.remove([entities[0].entity_id, entities[5].entity_id])
        assert len(shard) == len(entities) - 2
        assert shard.num_tombstones == 2
        for result in shard.search(queries, k=len(entities)):
            assert entities[0].entity_id not in result.entity_ids
            assert entities[5].entity_id not in result.entity_ids

    def test_remove_unknown_raises(self, kb):
        entities, vectors = kb
        shard = IVFShard(entities, vectors)
        with pytest.raises(KeyError):
            shard.remove(["w:missing"])

    def test_update_moves_entity_to_pending(self, kb):
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=1)
        moved = np.full((1, 16), 9.0)
        shard.update([entities[3]], moved)
        assert np.allclose(shard.vector(entities[3].entity_id), moved[0])
        result = shard.search(moved, k=1)[0]
        assert result.entity_ids == [entities[3].entity_id]

    def test_update_is_one_atomic_state_swap(self, kb):
        """update() tombstones and appends in a single state publication:
        no published state may ever lack the updated entity (the old
        remove()+add() composition exposed a window where a concurrent
        search saw the entity absent entirely)."""
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=10)
        target = entities[7]
        absent = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                if target.entity_id not in shard._state.id_to_position:
                    absent.append(True)
                    return

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            for step in range(200):
                shard.update([target], np.full((1, 16), float(step)))
        finally:
            stop.set()
            thread.join()
        assert not absent
        assert np.allclose(shard.vector(target.entity_id), 199.0)

    def test_compact_folds_pending_and_tombstones(self, kb, queries):
        entities, vectors = kb
        shard = IVFShard(entities, vectors, num_cells=10, nprobe=10)
        new = Entity(entity_id="w:new", title="new", description="d", domain="w")
        shard.add([new], np.full((1, 16), 5.0))
        shard.remove([entities[0].entity_id])
        before = [r.entity_ids for r in shard.search(queries, k=20)]

        generation = shard.compact()
        assert generation == 1
        assert shard.num_pending == 0
        assert shard.num_tombstones == 0
        assert len(shard) == len(entities)  # -1 removed, +1 added
        after = [r.entity_ids for r in shard.search(queries, k=20)]
        assert [sorted(ids) for ids in before] == [sorted(ids) for ids in after]

    def test_compact_to_zero_entities_rejected(self, kb):
        entities, vectors = kb
        shard = IVFShard(entities, vectors)
        shard.remove([e.entity_id for e in entities])
        with pytest.raises(ValueError):
            shard.compact()


class TestShardedMutation:
    def build(self):
        rng = np.random.default_rng(11)
        entities = make_entities("a", 40) + make_entities("b", 30)
        table = {e.entity_id: rng.normal(size=8) for e in entities}
        embed = lambda chunk: np.stack(
            [table.setdefault(e.entity_id, rng.normal(size=8)) for e in chunk]
        )
        index = ShardedEntityIndex.from_entities(
            entities, embed_fn=embed, backend=IVFBackend(nprobe=4)
        )
        return index

    def test_add_routes_by_domain_and_creates_worlds(self):
        index = self.build()
        additions = [
            Entity(entity_id="a:new", title="n", description="d", domain="a"),
            Entity(entity_id="c:0", title="n", description="d", domain="c"),
        ]
        index.add_entities(additions)
        assert "a:new" in index and "c:0" in index
        assert "c" in index.worlds()
        assert index.search(index.vector("a:new"), k=1)[0].entity_ids == ["a:new"]

    def test_remove_and_cache_invalidation(self):
        index = self.build()
        index.vector("a:3")  # populate the LRU cache
        assert "a:3" in index.embedding_cache
        index.remove_entities(["a:3"])
        assert "a:3" not in index
        assert "a:3" not in index.embedding_cache

    def test_update_refreshes_vector(self):
        index = self.build()
        target = index.entity("b:2")
        moved = np.full((1, 8), 7.0)
        index.update_entities([target], moved)
        assert np.allclose(index.vector("b:2"), moved[0])

    def test_compact_returns_generations(self):
        index = self.build()
        index.add_entities(
            [Entity(entity_id="a:new", title="n", description="d", domain="a")]
        )
        generations = index.compact()
        assert generations.get("a") == 1
