"""Quantization codec tests: round-trip error bounds and registry errors."""

import numpy as np
import pytest

from repro.index import Float64Storage, encode_matrix, storage_from_arrays


@pytest.fixture
def matrix():
    rng = np.random.default_rng(7)
    return rng.normal(scale=3.0, size=(40, 12))


class TestFloat64:
    def test_round_trip_is_bit_identical(self, matrix):
        storage = encode_matrix(matrix, "float64")
        assert np.array_equal(storage.to_dense(), matrix)

    def test_arrays_round_trip(self, matrix):
        storage = encode_matrix(matrix, "float64")
        restored = storage_from_arrays(storage.arrays(), "float64")
        assert np.array_equal(restored.to_dense(), matrix)

    def test_zero_copy_view(self, matrix):
        storage = Float64Storage(matrix)
        assert storage.arrays()[""].base is matrix or storage.arrays()[""] is matrix


class TestFloat16:
    def test_round_trip_error_bound(self, matrix):
        storage = encode_matrix(matrix, "float16")
        decoded = storage.to_dense()
        # float16 has a 10-bit mantissa: relative error <= 2**-11 per value.
        assert np.all(np.abs(decoded - matrix) <= np.abs(matrix) * 2.0**-11 + 1e-7)

    def test_four_times_smaller(self, matrix):
        assert encode_matrix(matrix, "float16").nbytes * 4 == matrix.nbytes

    def test_arrays_round_trip(self, matrix):
        storage = encode_matrix(matrix, "float16")
        restored = storage_from_arrays(storage.arrays(), "float16")
        assert np.array_equal(restored.to_dense(), storage.to_dense())


class TestInt8:
    def test_round_trip_error_bound(self, matrix):
        storage = encode_matrix(matrix, "int8")
        decoded = storage.to_dense()
        # Affine per-row quantizer: worst error is half a quantization step.
        step = (matrix.max(axis=1) - matrix.min(axis=1)) / 255.0
        assert np.all(np.abs(decoded - matrix) <= step[:, None] / 2.0 + 1e-12)

    def test_constant_rows_decode_exactly(self):
        constant = np.full((3, 8), 2.5)
        decoded = encode_matrix(constant, "int8").to_dense()
        assert np.array_equal(decoded, constant)

    def test_take_matches_to_dense(self, matrix):
        storage = encode_matrix(matrix, "int8")
        rows = np.asarray([5, 0, 17])
        assert np.array_equal(storage.take(rows), storage.to_dense()[rows])

    def test_arrays_round_trip(self, matrix):
        storage = encode_matrix(matrix, "int8")
        restored = storage_from_arrays(storage.arrays(), "int8")
        assert np.array_equal(restored.to_dense(), storage.to_dense())

    def test_roughly_eight_times_smaller(self):
        big = np.random.default_rng(0).normal(size=(1000, 64))
        # codes are 1 byte/value vs 8; the per-row scale/zero overhead is
        # amortised away at realistic dims.
        assert encode_matrix(big, "int8").nbytes < big.nbytes / 6
