"""Version-2 snapshots: quantized codecs, mmap, IVF state, generations."""

import json
import shutil

import numpy as np
import pytest

from repro.index import (
    IVFBackend,
    UnknownCodecError,
    compact_to_generation,
    current_generation,
    list_generations,
    write_generation,
)
from repro.kb import Entity
from repro.linking import ShardedEntityIndex
from repro.linking.candidates import (
    SNAPSHOT_ARRAYS,
    SNAPSHOT_ARRAYS_OLD,
    SNAPSHOT_ARRAYS_TOKEN,
    SNAPSHOT_MANIFEST,
)


def make_entities(world, count):
    return [
        Entity(
            entity_id=f"{world}:{index}",
            title=f"{world} entity {index}",
            description=f"description {index}",
            domain=world,
        )
        for index in range(count)
    ]


def build_index(backend=None, seed=0, dim=12):
    rng = np.random.default_rng(seed)
    entities = make_entities("alpha", 50) + make_entities("beta", 30)
    table = {e.entity_id: rng.normal(size=dim) for e in entities}
    embed = lambda chunk: np.stack([table[e.entity_id] for e in chunk])
    index = ShardedEntityIndex.from_entities(entities, embed_fn=embed, backend=backend)
    for world in index.worlds():
        index.shard(world)
    return index


@pytest.fixture
def queries():
    return np.random.default_rng(2).normal(size=(6, 12))


class TestQuantizedSnapshots:
    @pytest.mark.parametrize("codec", ["float64", "float16", "int8"])
    def test_exact_index_round_trips_under_codec(self, tmp_path, queries, codec):
        index = build_index()
        index.save(tmp_path / "snap", codec=codec)
        restored = ShardedEntityIndex.load(tmp_path / "snap")
        before = index.search(queries, k=8)
        after = restored.search(queries, k=8)
        agreement = np.mean(
            [
                len(set(a.entity_ids) & set(b.entity_ids)) / 8
                for a, b in zip(before, after)
            ]
        )
        if codec == "float64":
            assert agreement == 1.0  # lossless: identical rankings
        else:
            assert agreement >= 0.85  # quantization may swap close neighbours

    def test_unknown_codec_fails_with_clear_error(self, tmp_path):
        index = build_index()
        path = index.save(tmp_path / "snap", codec="int8")
        manifest = json.loads((path / SNAPSHOT_MANIFEST).read_text())
        for shard in manifest["shards"]:
            shard["codec"] = "pq4"
        (path / SNAPSHOT_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(UnknownCodecError, match="pq4"):
            ShardedEntityIndex.load(path)

    def test_unknown_backend_fails_with_clear_error(self, tmp_path):
        index = build_index()
        path = index.save(tmp_path / "snap")
        manifest = json.loads((path / SNAPSHOT_MANIFEST).read_text())
        manifest["shards"][0]["backend"] = "hnsw"
        (path / SNAPSHOT_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="hnsw"):
            ShardedEntityIndex.load(path)

    def test_save_under_unknown_codec_rejected(self, tmp_path):
        index = build_index()
        with pytest.raises(UnknownCodecError):
            index.save(tmp_path / "snap", codec="pq4")


class TestMmapLoading:
    def test_mmap_load_searches_identically(self, tmp_path, queries):
        index = build_index()
        index.save(tmp_path / "snap")
        in_ram = ShardedEntityIndex.load(tmp_path / "snap")
        mapped = ShardedEntityIndex.load(tmp_path / "snap", mmap=True)
        for a, b in zip(in_ram.search(queries, k=8), mapped.search(queries, k=8)):
            assert a.entity_ids == b.entity_ids
            assert np.allclose(a.scores, b.scores, atol=1e-12)

    def test_mmap_arrays_are_memory_mapped_and_read_only(self, tmp_path):
        index = build_index()
        index.save(tmp_path / "snap")
        mapped = ShardedEntityIndex.load(tmp_path / "snap", mmap=True)
        vectors = mapped.shard("alpha").vectors
        assert isinstance(vectors.base, np.memmap) or isinstance(vectors, np.memmap)
        assert not vectors.flags.writeable

    def test_mmap_index_still_updatable(self, tmp_path):
        """update() on a mapped exact shard copies-on-write, never writes
        through to the snapshot files."""
        index = build_index()
        path = index.save(tmp_path / "snap")
        mapped = ShardedEntityIndex.load(tmp_path / "snap", mmap=True)
        target = mapped.entity("alpha:0")
        mapped.update_entities([target], np.full((1, 12), 3.0))
        assert np.allclose(mapped.vector("alpha:0"), 3.0)
        # The on-disk snapshot is untouched.
        fresh = ShardedEntityIndex.load(path)
        assert not np.allclose(fresh.vector("alpha:0"), 3.0)


class TestIVFSnapshots:
    def test_ivf_round_trip_with_pending_and_tombstones(self, tmp_path, queries):
        index = build_index(backend=IVFBackend(nprobe=4))
        index.add_entities(
            [Entity(entity_id="alpha:new", title="n", description="d", domain="alpha")],
            np.full((1, 12), 4.0),
        )
        index.remove_entities(["beta:3"])
        index.save(tmp_path / "snap")

        restored = ShardedEntityIndex.load(tmp_path / "snap", mmap=True)
        shard = restored.shard("alpha")
        assert shard.num_pending == 1
        assert "alpha:new" in restored
        assert "beta:3" not in restored
        for a, b in zip(index.search(queries, k=10), restored.search(queries, k=10)):
            assert a.entity_ids == b.entity_ids

    def test_ivf_snapshot_restores_as_ivf_without_backend_arg(self, tmp_path):
        index = build_index(backend=IVFBackend(nprobe=2, codec="int8"))
        index.save(tmp_path / "snap")
        restored = ShardedEntityIndex.load(tmp_path / "snap")
        stats = restored.shard("alpha").stats()
        assert stats["backend"] == "ivf"
        assert stats["codec"] == "int8"
        assert stats["nprobe"] == 2

    def test_exact_snapshot_rebuilds_under_ivf_backend(self, tmp_path, queries):
        index = build_index()
        index.save(tmp_path / "snap")
        rebuilt = ShardedEntityIndex.load(
            tmp_path / "snap", backend=IVFBackend(nprobe=10**9)
        )
        assert rebuilt.shard("alpha").stats()["backend"] == "ivf"
        for a, b in zip(index.search(queries, k=8), rebuilt.search(queries, k=8)):
            assert a.entity_ids == b.entity_ids


class TestGenerationStore:
    def test_write_and_resolve_current(self, tmp_path, queries):
        index = build_index()
        store = tmp_path / "store"
        first = write_generation(index, store)
        assert first.name == "gen-00000001"
        assert current_generation(store) == first

        # Loading the store root resolves CURRENT transparently.
        restored = ShardedEntityIndex.load(store)
        for a, b in zip(index.search(queries, k=5), restored.search(queries, k=5)):
            assert a.entity_ids == b.entity_ids

    def test_generations_accumulate_and_current_advances(self, tmp_path):
        index = build_index()
        store = tmp_path / "store"
        write_generation(index, store)
        second = write_generation(index, store)
        assert [p.name for p in list_generations(store)] == [
            "gen-00000001",
            "gen-00000002",
        ]
        assert current_generation(store) == second

    def test_compact_to_generation_folds_pending(self, tmp_path):
        index = build_index(backend=IVFBackend(nprobe=4))
        index.add_entities(
            [Entity(entity_id="alpha:new", title="n", description="d", domain="alpha")],
            np.full((1, 12), 4.0),
        )
        store = tmp_path / "store"
        compact_to_generation(index, store)
        restored = ShardedEntityIndex.load(store)
        shard = restored.shard("alpha")
        assert shard.num_pending == 0
        assert "alpha:new" in restored

    def test_empty_store_has_no_current(self, tmp_path):
        assert current_generation(tmp_path / "missing") is None

    def test_corrupt_marker_raises(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "CURRENT").write_text("gen-00000009")
        with pytest.raises(ValueError, match="missing generation"):
            current_generation(store)


class TestCrashSafeResave:
    def test_resave_over_existing_snapshot_round_trips(self, tmp_path, queries):
        index = build_index()
        snap = tmp_path / "snap"
        index.save(snap)
        index.save(snap)  # in-place re-save over committed data
        assert not (snap / SNAPSHOT_ARRAYS_OLD).exists()
        restored = ShardedEntityIndex.load(snap)
        for a, b in zip(index.search(queries, k=8), restored.search(queries, k=8)):
            assert a.entity_ids == b.entity_ids

    def test_interrupted_resave_falls_back_to_committed_arrays(
        self, tmp_path, queries
    ):
        """Crash window: new arrays swapped in, manifest rename never ran.
        The committed manifest's token no longer matches arrays/, so load()
        must fall back to the parked arrays.old it does match."""
        index = build_index()
        snap = tmp_path / "snap"
        index.save(snap)
        before = index.search(queries, k=8)
        (snap / SNAPSHOT_ARRAYS).rename(snap / SNAPSHOT_ARRAYS_OLD)
        uncommitted = snap / SNAPSHOT_ARRAYS
        uncommitted.mkdir()
        (uncommitted / SNAPSHOT_ARRAYS_TOKEN).write_text("not-the-committed-token")
        restored = ShardedEntityIndex.load(snap)
        for a, b in zip(before, restored.search(queries, k=8)):
            assert a.entity_ids == b.entity_ids

    def test_interrupted_resave_with_arrays_missing_recovers(self, tmp_path, queries):
        """Crash window: committed arrays parked aside, replacement rename
        never ran — arrays/ is absent entirely."""
        index = build_index()
        snap = tmp_path / "snap"
        index.save(snap)
        before = index.search(queries, k=8)
        (snap / SNAPSHOT_ARRAYS).rename(snap / SNAPSHOT_ARRAYS_OLD)
        restored = ShardedEntityIndex.load(snap)
        for a, b in zip(before, restored.search(queries, k=8)):
            assert a.entity_ids == b.entity_ids

    def test_no_matching_arrays_is_a_clear_error(self, tmp_path):
        index = build_index()
        snap = tmp_path / "snap"
        index.save(snap)
        shutil.rmtree(snap / SNAPSHOT_ARRAYS)
        with pytest.raises(ValueError, match="arrays_token"):
            ShardedEntityIndex.load(snap)
