"""Codec registry and storage-protocol plumbing."""

import numpy as np
import pytest

from repro.index import CODECS, UnknownCodecError, as_storage, storage_codec


class TestRegistry:
    def test_known_codecs(self):
        assert set(CODECS) == {"float64", "float16", "int8"}

    def test_unknown_codec_raises_with_known_list(self):
        with pytest.raises(UnknownCodecError) as excinfo:
            storage_codec("pq4")
        message = str(excinfo.value)
        assert "pq4" in message
        for name in CODECS:
            assert name in message
        # The error explains the newer-build scenario to the operator.
        assert "newer" in message

    def test_unknown_codec_is_a_value_error(self):
        with pytest.raises(ValueError):
            storage_codec("nope")

    def test_as_storage_wraps_and_passes_through(self):
        matrix = np.zeros((2, 3))
        storage = as_storage(matrix)
        assert len(storage) == 2 and storage.dim == 3
        assert as_storage(storage) is storage

    def test_block_clamps_to_length(self):
        storage = as_storage(np.ones((4, 2)))
        assert storage.block(2, 99).shape == (2, 2)
