"""End-to-end tests: LoadHarness driving a real LinkingService."""

import time

import pytest

from repro.bench import (
    ClosedLoopArrivals,
    LoadHarness,
    PoissonArrivals,
    SLOSpec,
    UniformMentionSampler,
    Workload,
    attach_slo,
    mentions_by_world,
)
from repro.bench.harness import _QueueDepthTicker
from repro.data import split_domain
from repro.linking import BlinkPipeline
from repro.serving import EntityLinkingPipeline, LinkingService
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)


@pytest.fixture(scope="module")
def harness_setup(tiny_corpus, tiny_tokenizer):
    worlds = ["lego", "yugioh"]
    entities = [e for world in worlds for e in tiny_corpus.entities(world)]
    pools = {
        world: split_domain(tiny_corpus, world, seed_size=20, dev_size=10).test[:15]
        for world in worlds
    }
    blink = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
    index = blink.biencoder.build_sharded_index(entities, lazy=False)
    pipeline = EntityLinkingPipeline(
        blink.biencoder, index, blink.crossencoder, k=4, batch_size=8
    )
    pipeline.link(pools["lego"][:8])  # warm caches so timings are stable
    return pipeline, pools


def make_service(pipeline, **kwargs):
    kwargs.setdefault("max_batch_size", 8)
    kwargs.setdefault("max_wait_ms", 5.0)
    return LinkingService(pipeline, **kwargs)


class TestOpenLoop:
    def test_poisson_scenario_end_to_end(self, harness_setup):
        pipeline, pools = harness_setup
        workload = Workload(
            PoissonArrivals(rate=120.0, duration=0.4),
            UniformMentionSampler(pools),
            seed=13,
            name="steady",
        )
        expected = len(workload.schedule())
        with make_service(pipeline) as service:
            result = LoadHarness(service, tick_interval=0.002).run(workload)
        assert result.scenario == "steady"
        assert result.kind == "open"
        assert result.seed == 13
        assert result.requests == expected
        assert result.completed == expected
        assert result.errors == 0 and result.timeouts == 0
        assert result.error_rate == 0.0
        assert result.throughput > 0
        assert 0 < result.latency_ms["p50"] <= result.latency_ms["p99"]
        assert result.latency_ms["count"] == expected
        assert result.queue_depth["samples"] > 0
        assert result.queue_depth["peak"] >= result.queue_depth["max"] >= 0

    def test_accuracy_breakdown_counts_every_completion(self, harness_setup):
        pipeline, pools = harness_setup
        workload = Workload(
            PoissonArrivals(rate=100.0, duration=0.3),
            UniformMentionSampler(pools),
            seed=5,
        )
        with make_service(pipeline) as service:
            result = LoadHarness(service).run(workload, name="accuracy")
        per_world = result.accuracy["per_world"]
        assert set(per_world) <= {"lego", "yugioh"}
        assert sum(b["total"] for b in per_world.values()) == result.completed
        for bucket in per_world.values():
            assert 0.0 <= bucket["accuracy"] <= 1.0
        assert 0.0 <= float(result.accuracy["overall"]) <= 1.0

    def test_resets_stats_and_peak_between_runs(self, harness_setup):
        pipeline, pools = harness_setup
        workload = Workload(
            PoissonArrivals(rate=100.0, duration=0.2),
            UniformMentionSampler(pools),
            seed=3,
        )
        with make_service(pipeline) as service:
            harness = LoadHarness(service)
            first = harness.run(workload)
            second = harness.run(workload)
        # Same seeded schedule, fresh stats window each run.
        assert first.requests == second.requests
        assert pipeline.stats.latency_summary()["count"] == second.completed

    def test_slo_attached_to_result(self, harness_setup):
        pipeline, pools = harness_setup
        workload = Workload(
            PoissonArrivals(rate=80.0, duration=0.2),
            UniformMentionSampler(pools),
            seed=2,
        )
        with make_service(pipeline) as service:
            result = LoadHarness(service).run(workload)
        attach_slo(result, SLOSpec(
            name="lab", max_p99_ms=30_000.0, min_throughput=1.0,
            max_error_rate=0.0, min_accuracy=0.0,
        ).evaluate(result))
        assert result.slo["passed"] is True
        assert result.to_dict()["slo"]["spec"] == "lab"


class TestClosedLoop:
    def test_closed_loop_completes_all_requests(self, harness_setup):
        pipeline, pools = harness_setup
        workload = Workload(
            ClosedLoopArrivals(num_clients=4, num_requests=24),
            UniformMentionSampler(pools),
            seed=19,
            name="closed",
        )
        with make_service(pipeline, max_wait_ms=2.0) as service:
            result = LoadHarness(service).run(workload)
        assert result.kind == "closed"
        assert result.requests == 24
        assert result.completed == 24
        assert result.errors == 0 and result.timeouts == 0
        # Never more outstanding requests than clients in a closed loop.
        assert result.queue_depth["peak"] <= 4


class TestFailureModes:
    def test_timeouts_counted_and_futures_cancelled(self, harness_setup, monkeypatch):
        pipeline, pools = harness_setup
        real_link = pipeline.link

        def slow_link(mentions):
            time.sleep(0.3)
            return real_link(mentions)

        monkeypatch.setattr(pipeline, "link", slow_link)
        workload = Workload(
            PoissonArrivals(rate=100.0, duration=0.1),
            UniformMentionSampler(pools),
            seed=7,
        )
        with make_service(pipeline, max_wait_ms=1.0) as service:
            harness = LoadHarness(service, request_timeout=0.05)
            result = harness.run(workload)
        assert result.timeouts > 0
        assert result.completed + result.timeouts + result.errors == result.requests
        assert result.error_rate > 0

    def test_pipeline_errors_counted(self, harness_setup, monkeypatch):
        pipeline, pools = harness_setup

        def boom(mentions):
            raise RuntimeError("shard offline")

        monkeypatch.setattr(pipeline, "link", boom)
        workload = Workload(
            PoissonArrivals(rate=100.0, duration=0.1),
            UniformMentionSampler(pools),
            seed=11,
        )
        with make_service(pipeline, max_wait_ms=1.0) as service:
            result = LoadHarness(service).run(workload)
        assert result.errors == result.requests
        assert result.completed == 0
        assert result.latency_ms["count"] == 0.0

    def test_invalid_harness_parameters(self, harness_setup):
        pipeline, _ = harness_setup
        with make_service(pipeline) as service:
            with pytest.raises(ValueError):
                LoadHarness(service, tick_interval=0.0)
            with pytest.raises(ValueError):
                LoadHarness(service, request_timeout=0.0)

    def test_stopped_service_rejected(self, harness_setup):
        pipeline, pools = harness_setup
        service = make_service(pipeline)
        service.close(timeout=10.0)
        workload = Workload(
            PoissonArrivals(rate=10.0, duration=0.1),
            UniformMentionSampler(pools),
            seed=1,
        )
        with pytest.raises(RuntimeError):
            LoadHarness(service).run(workload)

    def test_fault_plan_requires_cluster_target(self, harness_setup):
        from repro.serving import FaultPlan

        pipeline, pools = harness_setup
        workload = Workload(
            PoissonArrivals(rate=10.0, duration=0.1),
            UniformMentionSampler(pools),
            seed=1,
        )
        with make_service(pipeline) as service:
            with pytest.raises(ValueError):
                LoadHarness(service).run(
                    workload, fault_plan=FaultPlan.kill(at=0.05, replica=0)
                )


class TestClusterTarget:
    def test_harness_drives_router_like_a_service(self, harness_setup):
        # The cluster front door is API-compatible with LinkingService, so
        # the harness runs unchanged against it (tier-1 smoke; the fault
        # scenarios live in the chaos-marked serving tests).
        from repro.serving import ReplicaPool, Router

        pipeline, pools = harness_setup
        workload = Workload(
            PoissonArrivals(rate=100.0, duration=0.3),
            UniformMentionSampler(pools),
            seed=13,
        )
        pool = ReplicaPool.from_pipeline(pipeline, replicas=2, max_wait_ms=5.0)
        with Router(pool, seed=13) as router:
            result = LoadHarness(router, tick_interval=0.002).run(workload)
        assert result.completed == result.requests
        assert result.errors == 0 and result.timeouts == 0
        assert result.rejected == 0
        assert result.faults is None
        assert result.queue_depth["peak"] >= result.queue_depth["max"]
        # Work actually spread over the pool's replicas.
        per_replica = router.stats.snapshot()["per_replica"]
        assert sum(r["mentions"] for r in per_replica) == result.completed


class TestQueueDepthTicker:
    def test_ticker_samples_arbitrary_depth_fn(self):
        # The ticker is decoupled from the service: any callable works, so
        # cluster code can point it at aggregate or per-replica depth.
        values = iter(range(100))
        with _QueueDepthTicker(lambda: next(values), interval=0.001) as ticker:
            time.sleep(0.05)
        summary = ticker.summary()
        assert summary["samples"] >= 2
        assert summary["max"] >= 1
        assert 0 <= summary["mean"] <= summary["max"]

    def test_ticker_survives_depth_fn_errors(self):
        # Probing a replica mid-teardown can raise; the ticker records a 0
        # and keeps sampling instead of dying mid-scenario.
        calls = {"n": 0}

        def flaky_depth():
            calls["n"] += 1
            if calls["n"] % 2:
                raise RuntimeError("replica went away")
            return 5

        with _QueueDepthTicker(flaky_depth, interval=0.001) as ticker:
            time.sleep(0.05)
        summary = ticker.summary()
        assert summary["samples"] >= 4
        assert summary["max"] == 5.0  # good samples survive the bad ones

    def test_ticker_observes_frozen_service_backlog(self, harness_setup):
        # A frozen service never drains, so the sampled depth must show the
        # standing backlog — the regression this guards: the ticker used to
        # hardwire ``service.pending``, invisible for cluster replicas.
        pipeline, pools = harness_setup
        mentions = pools["lego"][:6]
        service = make_service(pipeline, max_batch_size=64, max_wait_ms=60_000.0)
        try:
            futures = [service.submit(m) for m in mentions]
            with _QueueDepthTicker(lambda: service.pending, interval=0.002) as ticker:
                time.sleep(0.05)
            summary = ticker.summary()
            assert summary["max"] == len(mentions)
            assert summary["mean"] == len(mentions)
        finally:
            service.abort()
            service.close(timeout=10.0)
            for future in futures:
                assert future.done()

    def test_harness_uses_custom_depth_fn(self, harness_setup):
        pipeline, pools = harness_setup
        workload = Workload(
            PoissonArrivals(rate=60.0, duration=0.2),
            UniformMentionSampler(pools),
            seed=4,
        )
        with make_service(pipeline) as service:
            harness = LoadHarness(service, depth_fn=lambda: 7)
            result = harness.run(workload)
        assert result.queue_depth["max"] == 7.0
        assert result.queue_depth["mean"] == 7.0
        # The exact peak still comes from the service, not the depth_fn.
        assert result.queue_depth["peak"] >= 0.0
