"""Property tests for the deterministic workload generators."""

import numpy as np
import pytest

from repro.bench import (
    BurstyArrivals,
    ClosedLoopArrivals,
    PoissonArrivals,
    RampArrivals,
    Schedule,
    TraceReplaySampler,
    UniformMentionSampler,
    Workload,
    ZipfMentionSampler,
    mentions_by_world,
    scenario_catalogue,
)
from repro.kb.entity import Mention


def make_pools(num_worlds=4, per_world=6):
    return {
        f"world{i}": [
            Mention(
                mention_id=f"w{i}-m{j}",
                surface=f"surface {j}",
                context_left="left",
                context_right="right",
                domain=f"world{i}",
                gold_entity_id=f"world{i}:{j}",
            )
            for j in range(per_world)
        ]
        for i in range(num_worlds)
    }


POOLS = make_pools()


class TestDeterminism:
    @pytest.mark.parametrize("arrivals", [
        PoissonArrivals(rate=200.0, duration=1.5),
        BurstyArrivals(burst_rate=400.0, idle_rate=20.0, burst_seconds=0.2,
                       idle_seconds=0.3, duration=1.5),
        RampArrivals(start_rate=50.0, end_rate=400.0, duration=1.5),
        ClosedLoopArrivals(num_clients=4, num_requests=64),
    ])
    def test_same_seed_byte_identical_schedule(self, arrivals):
        # Two *independent* Workload instantiations with the same seed must
        # produce the identical arrival schedule and mention sequence, down
        # to the offset bytes.
        first = Workload(arrivals, UniformMentionSampler(POOLS), seed=42).schedule()
        second = Workload(arrivals, UniformMentionSampler(POOLS), seed=42).schedule()
        assert first.offsets.tobytes() == second.offsets.tobytes()
        assert [m.mention_id for m in first.mentions] == [
            m.mention_id for m in second.mentions
        ]
        assert first.signature() == second.signature()

    def test_different_seed_different_schedule(self):
        arrivals = PoissonArrivals(rate=200.0, duration=1.5)
        sampler = UniformMentionSampler(POOLS)
        first = Workload(arrivals, sampler, seed=1).schedule()
        second = Workload(arrivals, sampler, seed=2).schedule()
        assert first.signature() != second.signature()

    def test_schedule_can_be_rematerialised(self):
        workload = Workload(
            PoissonArrivals(rate=100.0, duration=1.0),
            ZipfMentionSampler(POOLS),
            seed=9,
        )
        assert workload.schedule().signature() == workload.schedule().signature()


class TestPoisson:
    def test_inter_arrival_mean_matches_rate(self):
        # 20k arrivals at 100 req/s: mean gap must be ~1/rate within 3%.
        rate = 100.0
        schedule = Workload(
            PoissonArrivals(rate=rate, duration=200.0),
            TraceReplaySampler(POOLS["world0"]),
            seed=3,
        ).schedule()
        gaps = np.diff(schedule.offsets)
        assert len(schedule) > 15_000
        assert np.mean(gaps) == pytest.approx(1.0 / rate, rel=0.03)

    def test_offsets_sorted_and_bounded(self):
        schedule = Workload(
            PoissonArrivals(rate=500.0, duration=2.0),
            UniformMentionSampler(POOLS),
            seed=5,
        ).schedule()
        assert np.all(np.diff(schedule.offsets) >= 0)
        assert schedule.offsets[0] >= 0.0
        assert schedule.duration <= 2.0


class TestZipf:
    def test_world_frequencies_match_configured_skew(self):
        # Empirical world frequencies over 20k draws must match the exact
        # Zipf distribution the sampler advertises.
        sampler = ZipfMentionSampler(POOLS, world_exponent=1.4, entity_exponent=1.0)
        rng = np.random.default_rng(17)
        draws = sampler.sample(rng, 20_000)
        expected = sampler.world_probabilities()
        counts = {world: 0 for world in POOLS}
        for mention in draws:
            counts[mention.domain] += 1
        for world, probability in expected.items():
            assert counts[world] / len(draws) == pytest.approx(probability, abs=0.02)
        # The skew is real: hottest world dominates the coldest.
        assert counts["world0"] > 3 * counts["world3"]

    def test_entity_skew_within_world(self):
        sampler = ZipfMentionSampler(POOLS, world_exponent=0.001, entity_exponent=2.0)
        rng = np.random.default_rng(23)
        draws = [m for m in sampler.sample(rng, 20_000) if m.domain == "world1"]
        first = sum(1 for m in draws if m.mention_id == "w1-m0")
        last = sum(1 for m in draws if m.mention_id == "w1-m5")
        assert first > 10 * max(last, 1)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfMentionSampler(POOLS, world_exponent=0.0)


class TestRampAndBurst:
    def test_ramp_rate_increases_over_time(self):
        schedule = Workload(
            RampArrivals(start_rate=20.0, end_rate=400.0, duration=10.0),
            UniformMentionSampler(POOLS),
            seed=7,
        ).schedule()
        half = schedule.offsets < 5.0
        # The rate integral gives 575 arrivals in the first half vs 1525 in
        # the second — a 2.65x density ratio; assert a safe 2x margin.
        assert half.sum() * 2 < (~half).sum()
        assert np.all(schedule.offsets <= 10.0)

    def test_constant_ramp_equals_poisson_rate(self):
        schedule = Workload(
            RampArrivals(start_rate=100.0, end_rate=100.0, duration=50.0),
            TraceReplaySampler(POOLS["world0"]),
            seed=11,
        ).schedule()
        assert len(schedule) == pytest.approx(5000, rel=0.05)

    def test_burst_phases_denser_than_idle(self):
        schedule = Workload(
            BurstyArrivals(burst_rate=400.0, idle_rate=10.0, burst_seconds=0.5,
                           idle_seconds=0.5, duration=8.0),
            UniformMentionSampler(POOLS),
            seed=13,
        ).schedule()
        phase = np.floor(schedule.offsets / 0.5).astype(int)
        burst_count = np.sum(phase % 2 == 0)
        idle_count = np.sum(phase % 2 == 1)
        assert burst_count > 10 * max(idle_count, 1)


class TestSamplersAndSchedules:
    def test_trace_replay_cycles_in_order(self):
        trace = POOLS["world2"]
        sampler = TraceReplaySampler(trace)
        rng = np.random.default_rng(0)
        drawn = sampler.sample(rng, len(trace) * 2 + 3)
        expected = [trace[i % len(trace)].mention_id for i in range(len(drawn))]
        assert [m.mention_id for m in drawn] == expected

    def test_uniform_sampler_covers_all_worlds(self):
        sampler = UniformMentionSampler(POOLS)
        rng = np.random.default_rng(29)
        seen = {m.domain for m in sampler.sample(rng, 500)}
        assert seen == set(POOLS)

    def test_closed_loop_schedule_shape(self):
        schedule = Workload(
            ClosedLoopArrivals(num_clients=3, num_requests=10),
            UniformMentionSampler(POOLS),
            seed=31,
        ).schedule()
        assert schedule.kind == "closed"
        assert schedule.num_clients == 3
        assert len(schedule) == 10
        assert np.all(schedule.offsets == 0.0)

    def test_mentions_by_world_groups_by_domain(self):
        flat = [m for pool in POOLS.values() for m in pool]
        grouped = mentions_by_world(flat)
        assert set(grouped) == set(POOLS)
        assert [m.mention_id for m in grouped["world1"]] == [
            m.mention_id for m in POOLS["world1"]
        ]

    def test_catalogue_contains_standard_scenarios(self):
        catalogue = scenario_catalogue(POOLS, seed=1, duration=0.5, rate=40.0)
        assert {"steady_poisson", "burst", "ramp", "zipf_worlds",
                "closed_loop"} <= set(catalogue)
        for name, workload in catalogue.items():
            assert workload.schedule().signature() == workload.schedule().signature()

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0, duration=1.0)
        with pytest.raises(ValueError):
            RampArrivals(start_rate=0.0, end_rate=0.0, duration=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(burst_rate=1.0, idle_rate=-1.0, burst_seconds=1.0,
                           idle_seconds=1.0, duration=1.0)
        with pytest.raises(ValueError):
            ClosedLoopArrivals(num_clients=0, num_requests=1)
        with pytest.raises(ValueError):
            UniformMentionSampler({})
        with pytest.raises(ValueError):
            UniformMentionSampler({"w": []})
        with pytest.raises(ValueError):
            TraceReplaySampler([])
        with pytest.raises(ValueError):
            Schedule(kind="weird", offsets=np.zeros(1),
                     mentions=(POOLS["world0"][0],))


class TestClusterScenarioCatalogue:
    def test_catalogue_shape_and_fault_plans(self):
        from repro.bench import cluster_scenario_catalogue

        catalogue = cluster_scenario_catalogue(POOLS, replicas=4, seed=13,
                                               duration=2.0, rate=100.0)
        assert set(catalogue) == {
            "cluster_steady", "kill_replica", "slow_replica", "freeze_thaw",
            "crash_loop_recovery", "brownout_overload",
        }
        assert catalogue["cluster_steady"].fault_plan is None
        kill = catalogue["kill_replica"].fault_plan
        assert [e.action for e in kill.events] == ["kill"]
        assert kill.events[0].replica == 3  # last slot of a 4-wide pool
        assert kill.events[0].at == pytest.approx(0.8)  # 40% into the run
        thaw = catalogue["freeze_thaw"].fault_plan
        assert [e.action for e in thaw.events] == ["freeze", "unfreeze"]
        crash_loop = catalogue["crash_loop_recovery"]
        assert crash_loop.supervised and not crash_loop.brownout
        assert [e.action for e in crash_loop.fault_plan.events] == ["kill"] * 3
        # Every kill targets the same slot and none schedules a restart:
        # only the supervisor can bring the replica back.
        assert {e.replica for e in crash_loop.fault_plan.events} == {3}
        assert [e.at for e in crash_loop.fault_plan.events] == (
            pytest.approx([0.5, 1.0, 1.5])
        )
        brownout = catalogue["brownout_overload"]
        assert brownout.supervised and brownout.brownout
        # Every replica drags so queue pressure builds on any hardware.
        assert [e.action for e in brownout.fault_plan.events] == ["slow"] * 4
        assert {e.replica for e in brownout.fault_plan.events} == {0, 1, 2, 3}
        assert all(e.value > 0 for e in brownout.fault_plan.events)
        for scenario in catalogue.values():
            assert scenario.workload.seed == 13
            assert scenario.description

    def test_fault_scenarios_share_the_baseline_schedule(self):
        # Same seed everywhere: the arrival schedule under a fault must be
        # byte-identical to the healthy baseline's, so measurements differ
        # only because of the fault.
        from repro.bench import cluster_scenario_catalogue

        catalogue = cluster_scenario_catalogue(POOLS, replicas=2, seed=7)
        signatures = {
            scenario.workload.schedule().signature()
            for scenario in catalogue.values()
            # brownout_overload deliberately runs 4x the baseline rate —
            # the overload *is* its injury — so it has its own schedule.
            if scenario.name != "brownout_overload"
        }
        assert len(signatures) == 1

    def test_replica_floor_validated(self):
        from repro.bench import cluster_scenario_catalogue

        with pytest.raises(ValueError):
            cluster_scenario_catalogue(POOLS, replicas=1)
