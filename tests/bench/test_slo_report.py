"""Tests for SLO evaluation and the scenario report renderers."""

import json

import pytest

from repro.bench import (
    SLOSpec,
    ScenarioResult,
    attach_slo,
    load_slo_file,
    render_markdown,
    results_payload,
    write_json,
)


def make_result(**overrides):
    base = dict(
        scenario="steady_poisson",
        kind="open",
        seed=13,
        requests=100,
        completed=98,
        errors=1,
        timeouts=1,
        wall_seconds=2.0,
        throughput=49.0,
        latency_ms={"count": 98.0, "mean": 40.0, "max": 120.0,
                    "p50": 35.0, "p90": 80.0, "p99": 110.0},
        queue_depth={"max": 12.0, "mean": 4.0, "samples": 400.0, "peak": 14.0},
        accuracy={"overall": 0.75, "per_world": {
            "lego": {"correct": 30, "total": 40, "accuracy": 0.75},
            "yugioh": {"correct": 43, "total": 58, "accuracy": 0.7414},
        }},
    )
    base.update(overrides)
    return ScenarioResult(**base)


class TestSLOSpec:
    def test_all_criteria_pass(self):
        spec = SLOSpec(name="tight", max_p50_ms=50.0, max_p99_ms=150.0,
                       min_throughput=40.0, min_accuracy=0.5,
                       max_error_rate=0.05)
        report = spec.evaluate(make_result())
        assert report.passed
        assert report.verdict == "pass"
        assert len(report.checks) == 5
        assert report.failures() == ()

    def test_each_criterion_can_fail(self):
        result = make_result()
        failing = [
            SLOSpec(max_p50_ms=10.0),
            SLOSpec(max_p99_ms=100.0),
            SLOSpec(min_throughput=60.0),
            SLOSpec(min_accuracy=0.9),
            SLOSpec(max_error_rate=0.001),
        ]
        for spec in failing:
            report = spec.evaluate(result)
            assert not report.passed
            assert len(report.failures()) == 1

    def test_unset_bounds_are_not_checked(self):
        report = SLOSpec().evaluate(make_result())
        assert report.checks == ()
        assert report.passed  # vacuously

    def test_error_rate_counts_timeouts(self):
        result = make_result(errors=0, timeouts=5)
        report = SLOSpec(max_error_rate=0.04).evaluate(result)
        assert not report.passed
        assert report.checks[0].observed == pytest.approx(0.05)

    def test_round_trip_dict(self):
        spec = SLOSpec(name="s", max_p99_ms=100.0, min_throughput=5.0)
        assert SLOSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO field"):
            SLOSpec.from_dict({"max_p42_ms": 1.0})


class TestSLOFile:
    def test_single_spec_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"max_p99_ms": 200.0}))
        specs = load_slo_file(path)
        assert set(specs) == {"*"}
        assert specs["*"].max_p99_ms == 200.0

    def test_per_scenario_mapping(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "steady_poisson": {"max_p99_ms": 200.0},
            "burst": {"max_p99_ms": 500.0, "name": "burst-slo"},
        }))
        specs = load_slo_file(path)
        assert specs["steady_poisson"].name == "steady_poisson"
        assert specs["burst"].name == "burst-slo"
        assert specs["burst"].max_p99_ms == 500.0

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_slo_file(path)


class TestReport:
    def test_payload_shape(self):
        result = make_result()
        attach_slo(result, SLOSpec(max_p99_ms=150.0).evaluate(result))
        payload = results_payload([result], config={"rate": 50.0})
        assert payload["benchmark"] == "load_scenarios"
        assert payload["config"] == {"rate": 50.0}
        scenario = payload["scenarios"]["steady_poisson"]
        assert scenario["throughput"] == pytest.approx(49.0)
        assert scenario["latency_ms"]["p99"] == pytest.approx(110.0)
        assert scenario["queue_depth"]["peak"] == pytest.approx(14.0)
        assert scenario["slo"]["passed"] is True
        assert scenario["error_rate"] == pytest.approx(0.02)

    def test_round_trips_through_json(self, tmp_path):
        result = make_result()
        path = write_json([result], tmp_path / "BENCH_load.json")
        reloaded = json.loads(path.read_text())
        assert reloaded["scenarios"]["steady_poisson"]["requests"] == 100

    def test_markdown_contains_verdicts_and_metrics(self):
        passing = make_result()
        attach_slo(passing, SLOSpec(name="ok", max_p99_ms=150.0).evaluate(passing))
        failing = make_result(scenario="burst")
        attach_slo(failing, SLOSpec(name="tight", max_p50_ms=1.0).evaluate(failing))
        markdown = render_markdown([passing, failing])
        assert "| steady_poisson |" in markdown
        assert "| burst |" in markdown
        assert "PASS" in markdown and "FAIL" in markdown
        assert "latency_p50_ms" in markdown
        assert "49.0" in markdown  # throughput cell

    def test_markdown_without_slo(self):
        markdown = render_markdown([make_result()])
        assert "—" in markdown
