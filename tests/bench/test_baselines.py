"""Tests for the tolerance-based benchmark regression gate."""

import json

import pytest

from repro.bench import (
    compare,
    flatten_metrics,
    load_all_baselines,
    load_bench,
    metric_direction,
)

BASELINE = {
    "benchmark": "load_scenarios",
    "config": {"rate": 150.0, "seed": 13},
    "scenarios": {
        "steady_poisson": {
            "requests": 300,
            "throughput": 148.0,
            "error_rate": 0.0,
            "latency_ms": {"p50": 30.0, "p90": 60.0, "p99": 90.0, "count": 300.0},
            "queue_depth": {"peak": 20.0, "samples": 400.0},
            "accuracy": {"overall": 0.5},
            "slo": {"passed": True},
        }
    },
}


def degraded(payload, latency_factor=3.0, throughput_factor=3.0):
    """A deliberately worse copy: slower, fewer requests per second."""
    copy = json.loads(json.dumps(payload))
    for scenario in copy["scenarios"].values():
        scenario["throughput"] /= throughput_factor
        for key in ("p50", "p90", "p99"):
            scenario["latency_ms"][key] *= latency_factor
    return copy


class TestFlatten:
    def test_nested_keys_and_types(self):
        flat = flatten_metrics(BASELINE)
        assert flat["scenarios.steady_poisson.latency_ms.p99"] == 90.0
        assert flat["config.rate"] == 150.0
        # Booleans (SLO verdicts) and strings are not metrics.
        assert "scenarios.steady_poisson.slo.passed" not in flat
        assert "benchmark" not in flat

    def test_lists_are_indexed(self):
        flat = flatten_metrics({"xs": [1.0, 2.0], "objs": [{"a": 3.0}]})
        assert flat == {"xs[0]": 1.0, "xs[1]": 2.0, "objs[0].a": 3.0}


class TestDirections:
    @pytest.mark.parametrize("key,expected", [
        ("scenarios.x.throughput", "higher"),
        ("mentions_per_second.linking_service", "higher"),
        ("scenarios.x.accuracy.overall", "higher"),
        ("kv_cached_vs_naive_float64", "higher"),
        ("scenarios.x.latency_ms.p99", "lower"),
        ("service_latency_ms.p50", "lower"),
        ("scenarios.x.queue_depth.peak", "lower"),
        ("scenarios.x.error_rate", "lower"),
        ("config.rate", None),
        ("scenarios.x.requests", None),
        ("scenarios.x.latency_ms.count", None),
        ("config.repeats", None),
        ("scenarios.x.accuracy.per_world.lego.correct", None),
        ("scenarios.x.accuracy.per_world.lego.accuracy", None),
    ])
    def test_name_based_inference(self, key, expected):
        assert metric_direction(key) == expected


class TestCompare:
    def test_identical_run_passes(self):
        report = compare(BASELINE, BASELINE, rtol=0.2)
        assert report.passed
        assert report.regressions == ()
        assert report.missing == ()
        assert len(report.checks) > 0
        assert "PASS" in report.summary()

    def test_degraded_run_fails_the_gate(self):
        report = compare(degraded(BASELINE), BASELINE, rtol=0.25)
        assert not report.passed
        regressed = {check.metric for check in report.regressions}
        assert "scenarios.steady_poisson.throughput" in regressed
        assert "scenarios.steady_poisson.latency_ms.p99" in regressed
        assert "REGRESSED" in report.summary()

    def test_within_tolerance_noise_passes(self):
        noisy = degraded(BASELINE, latency_factor=1.1, throughput_factor=1.1)
        assert compare(noisy, BASELINE, rtol=0.25).passed
        assert not compare(noisy, BASELINE, rtol=0.05).passed

    def test_improvements_are_reported_not_failed(self):
        improved = degraded(BASELINE, latency_factor=0.25, throughput_factor=0.25)
        report = compare(improved, BASELINE, rtol=0.2)
        assert report.passed
        assert len(report.improvements) >= 2

    def test_missing_metric_is_a_regression(self):
        current = json.loads(json.dumps(BASELINE))
        del current["scenarios"]["steady_poisson"]["throughput"]
        report = compare(current, BASELINE, rtol=0.2)
        assert not report.passed
        assert "scenarios.steady_poisson.throughput" in report.missing
        assert "missing" in report.summary()

    def test_zero_baseline_error_rate(self):
        worse = json.loads(json.dumps(BASELINE))
        worse["scenarios"]["steady_poisson"]["error_rate"] = 0.1
        assert not compare(worse, BASELINE).passed
        assert compare(BASELINE, BASELINE).passed  # 0 vs 0 still passes

    def test_direction_overrides(self):
        report = compare(
            degraded(BASELINE), BASELINE, rtol=0.25,
            directions={
                "scenarios.steady_poisson.throughput": "skip",
                "scenarios.steady_poisson.latency_ms.p50": None,
                "scenarios.steady_poisson.latency_ms.p90": None,
                "scenarios.steady_poisson.latency_ms.p99": None,
            },
        )
        gated = {check.metric for check in report.checks}
        assert "scenarios.steady_poisson.throughput" not in gated
        assert report.passed
        with pytest.raises(ValueError):
            compare(BASELINE, BASELINE, directions={"config.rate": "sideways"})

    def test_new_metrics_in_current_run_pass_freely(self):
        current = json.loads(json.dumps(BASELINE))
        current["scenarios"]["burst"] = {"throughput": 1.0}
        assert compare(current, BASELINE).passed

    def test_atol_forgives_near_zero_baselines(self):
        current = json.loads(json.dumps(BASELINE))
        current["scenarios"]["steady_poisson"]["accuracy"]["overall"] = 0.47
        # 0.47 vs 0.5 fails a 1% relative gate but sits inside atol=0.05.
        assert not compare(current, BASELINE, rtol=0.01).passed
        assert compare(current, BASELINE, rtol=0.01, atol=0.05).passed

    def test_negative_tolerances_rejected(self):
        with pytest.raises(ValueError):
            compare(BASELINE, BASELINE, rtol=-0.1)
        with pytest.raises(ValueError):
            compare(BASELINE, BASELINE, atol=-0.1)


class TestLoaders:
    def test_load_bench_and_all_baselines(self, tmp_path):
        (tmp_path / "BENCH_load.json").write_text(json.dumps(BASELINE))
        (tmp_path / "BENCH_serving.json").write_text(json.dumps({"benchmark": "s"}))
        assert load_bench(tmp_path / "BENCH_load.json") == BASELINE
        found = load_all_baselines(tmp_path)
        assert set(found) == {"BENCH_load.json", "BENCH_serving.json"}

    def test_repo_baselines_gate_against_themselves(self):
        # Every committed BENCH file must pass its own gate — the invariant
        # CI relies on when comparing a fresh run to the committed numbers.
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        found = load_all_baselines(root)
        assert "BENCH_serving.json" in found  # committed since PR 2
        for name, payload in found.items():
            report = compare(payload, payload, rtol=0.0)
            assert report.passed, f"{name}: {report.summary()}"
