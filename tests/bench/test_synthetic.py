"""Synthetic KB enlarger: determinism, structure, and IVF-friendliness."""

import numpy as np
import pytest

from repro.bench import enlarge_kb, synthetic_kb
from repro.eval import recall_at_k
from repro.index import IVFShard
from repro.kb import Entity
from repro.linking import EntityIndex


def base_kb(count=20, dim=6, seed=0):
    rng = np.random.default_rng(seed)
    entities = [
        Entity(
            entity_id=f"w:{index}",
            title=f"entity {index}",
            description="d",
            domain="w",
        )
        for index in range(count)
    ]
    return entities, rng.normal(size=(count, dim))


class TestEnlargeKb:
    def test_reaches_target_count_with_unique_ids(self):
        entities, vectors = base_kb()
        out_entities, out_vectors = enlarge_kb(entities, vectors, 137, seed=1)
        assert len(out_entities) == 137
        assert out_vectors.shape == (137, 6)
        assert len({e.entity_id for e in out_entities}) == 137

    def test_base_prefix_is_bit_identical(self):
        entities, vectors = base_kb()
        out_entities, out_vectors = enlarge_kb(entities, vectors, 100, seed=1)
        assert out_entities[:20] == entities
        assert np.array_equal(out_vectors[:20], vectors)

    def test_deterministic(self):
        entities, vectors = base_kb()
        first = enlarge_kb(entities, vectors, 90, seed=5)
        second = enlarge_kb(entities, vectors, 90, seed=5)
        assert first[0] == second[0]
        assert np.array_equal(first[1], second[1])

    def test_aliases_keep_domain_and_description(self):
        entities, vectors = base_kb()
        out_entities, _ = enlarge_kb(entities, vectors, 60, seed=1)
        alias = out_entities[25]  # replica 1 of entity 5
        assert alias.entity_id == "w:5~1"
        assert alias.domain == "w"
        assert alias.description == entities[5].description

    def test_target_below_base_rejected(self):
        entities, vectors = base_kb()
        with pytest.raises(ValueError):
            enlarge_kb(entities, vectors, 5)


class TestSyntheticKb:
    def test_shape_worlds_and_determinism(self):
        entities, vectors = synthetic_kb(500, dim=8, num_base=50, num_worlds=3, seed=2)
        assert len(entities) == 500 and vectors.shape == (500, 8)
        assert {e.domain for e in entities} == {"syn0", "syn1", "syn2"}
        again = synthetic_kb(500, dim=8, num_base=50, num_worlds=3, seed=2)
        assert np.array_equal(vectors, again[1])

    def test_cluster_structure_gives_high_ivf_recall(self):
        """The enlarger's raison d'etre: aliases huddle around base points,
        so IVF recall on a synthetic KB is high at modest nprobe."""
        entities, vectors = synthetic_kb(2000, dim=16, num_base=64, seed=3)
        exact = EntityIndex(entities, vectors)
        shard = IVFShard(entities, vectors, num_cells=32, nprobe=8, seed=3)
        queries = np.random.default_rng(4).normal(size=(16, 16))
        recall = recall_at_k(shard.search(queries, k=32), exact.search(queries, k=32))
        assert recall >= 0.9
