"""Decode-engine regression suite: KV-cache parity, dtype policy, bucketing.

The KV-cached :meth:`Seq2SeqModel.greedy_decode` must be token-for-token
identical to the naive full-re-forward reference across every constraint
path; the float32 inference switch must stay numerically close to float64;
and length-bucketed ``rewrite_entities`` must return outputs in input order.
"""

import numpy as np
import pytest

from repro.generation import MentionRewriter, Seq2SeqModel, source_domain_pairs
from repro.nn import compute_dtype
from repro.utils.config import RewriterConfig


@pytest.fixture(scope="module")
def decode_model():
    """An untrained (but deterministic) seq2seq with mixed-length sources."""
    config = RewriterConfig(
        vocab_size=90, model_dim=32, num_layers=2, num_heads=4, hidden_dim=64,
        max_source_length=16, max_target_length=10,
    )
    model = Seq2SeqModel(config, pad_id=0, bos_id=1, eos_id=2)
    rng = np.random.default_rng(7)
    sources = rng.integers(3, 90, size=(6, 16))
    sources[1, 10:] = 0
    sources[4, 6:] = 0
    return model, sources


class TestDecodeParity:
    """Cached engine vs naive reference, token for token (float64)."""

    def test_default_arguments(self, decode_model):
        model, sources = decode_model
        assert model.greedy_decode(sources) == model.greedy_decode_naive(sources)

    def test_min_length_blocks_early_eos(self, decode_model):
        model, sources = decode_model
        cached = model.greedy_decode(sources, min_length=4)
        assert cached == model.greedy_decode_naive(sources, min_length=4)
        assert all(len(row) >= 4 for row in cached)

    def test_allowed_boost_and_ban_paths(self, decode_model):
        model, sources = decode_model
        kwargs = dict(
            allowed_token_ids=[5, 9, 11, 30, 42],
            banned_token_ids=[11],
            boosted_token_ids=[9, 30],
            boost=3.0,
            min_length=2,
        )
        cached = model.greedy_decode(sources, **kwargs)
        assert cached == model.greedy_decode_naive(sources, **kwargs)
        emitted = {token for row in cached for token in row}
        assert emitted <= {5, 9, 30, 42}

    def test_early_finish_drops_rows_independently(self, decode_model):
        model, sources = decode_model
        kwargs = dict(allowed_token_ids=[5, 9, 11, 30, 42],
                      boosted_token_ids=[9, 30], boost=3.0)
        cached = model.greedy_decode(sources, **kwargs)
        assert cached == model.greedy_decode_naive(sources, **kwargs)
        lengths = {len(row) for row in cached}
        # Rows must finish at different steps so the parity run exercises
        # active-batch compaction, not just the full-length path.
        assert len(lengths) > 1

    def test_no_repetition_penalty(self, decode_model):
        model, sources = decode_model
        cached = model.greedy_decode(sources, repetition_penalty=0.0)
        assert cached == model.greedy_decode_naive(sources, repetition_penalty=0.0)

    def test_single_row_and_1d_input(self, decode_model):
        model, sources = decode_model
        assert model.greedy_decode(sources[0]) == model.greedy_decode_naive(sources[0])

    def test_per_row_constraints_match_rowwise_naive(self, decode_model):
        model, sources = decode_model
        allowed = [[5, 9, 11], [9, 30, 42], [5, 42], [11, 30], [5, 9, 30], [42, 11]]
        boosted = [[9], [30], [42], [11], [5], [42]]
        cached = model.greedy_decode(
            sources, allowed_token_ids=allowed, boosted_token_ids=boosted,
            boost=3.0, min_length=2,
        )
        rowwise = [
            model.greedy_decode_naive(
                sources[row:row + 1], allowed_token_ids=allowed[row],
                boosted_token_ids=boosted[row], boost=3.0, min_length=2,
            )[0]
            for row in range(len(sources))
        ]
        assert cached == rowwise

    def test_per_row_length_mismatch_raises(self, decode_model):
        model, sources = decode_model
        with pytest.raises(ValueError):
            model.greedy_decode(sources, allowed_token_ids=[[5, 9], [9, 30]])


class TestDecodeDtype:
    def test_float32_decode_produces_valid_tokens(self, decode_model):
        model, sources = decode_model
        with compute_dtype("float32"):
            decoded = model.greedy_decode(sources, allowed_token_ids=[5, 9, 30, 42], boost=3.0)
        assert len(decoded) == len(sources)
        assert all(token in (5, 9, 30, 42) for row in decoded for token in row)

    def test_float32_pooled_encoding_close_to_float64(self, decode_model):
        model, sources = decode_model
        from repro.nn import no_grad

        with no_grad():
            pooled64 = model.encoder.encode(sources).data
            with compute_dtype("float32"):
                pooled32 = model.encoder.encode(sources).data
        assert pooled32.dtype == np.float32
        np.testing.assert_allclose(pooled32, pooled64, atol=1e-4, rtol=1e-3)

    def test_training_unaffected_by_surrounding_compute_dtype(self, decode_model):
        model, sources = decode_model
        targets = np.zeros((len(sources), 4), dtype=np.int64)
        targets[:, 0] = model.bos_id
        targets[:, 1] = 5
        targets[:, 2] = model.eos_id
        with compute_dtype("float32"):
            loss = model.batch_loss(sources, targets)
        assert loss.data.dtype == np.float64


class TestBucketedRewriting:
    @pytest.fixture(scope="class")
    def trained_rewriter(self, tiny_corpus, tiny_tokenizer, tiny_rewriter_config):
        rewriter = MentionRewriter(tiny_tokenizer, config=tiny_rewriter_config)
        rewriter.fit(source_domain_pairs(tiny_corpus, limit_per_domain=8), seed=0, max_pairs=50)
        return rewriter

    def test_output_order_stable_under_bucketing(self, trained_rewriter, tiny_corpus):
        """Batched (bucketed) outputs align with the input entity order."""
        entities = tiny_corpus.entities("lego")[:8] + tiny_corpus.entities("yugioh")[:8]
        batched = trained_rewriter.rewrite_entities(entities)
        single = [trained_rewriter.rewrite_entity(entity) for entity in entities]
        assert batched == single

    def test_bucketing_trims_but_preserves_descriptions_effect(self, trained_rewriter, tiny_corpus):
        # Reversing the input order must permute outputs identically.
        entities = tiny_corpus.entities("star_trek")[:10]
        forward = trained_rewriter.rewrite_entities(entities)
        backward = trained_rewriter.rewrite_entities(entities[::-1])
        assert forward == backward[::-1]

    def test_empty_entity_list(self, trained_rewriter):
        assert trained_rewriter.rewrite_entities([]) == []
