"""Tests for the seq2seq model and mention rewriter (T5 stand-in)."""

import numpy as np
import pytest

from repro.generation import (
    MentionRewriter,
    REWRITTEN_SOURCE,
    Seq2SeqModel,
    build_exact_match_data,
    build_synthetic_data,
    build_tokenizer_for_corpus,
    source_domain_pairs,
    train_rewriter,
)
from repro.text import Tokenizer
from repro.utils.config import RewriterConfig


@pytest.fixture(scope="module")
def copy_task_model():
    """A tiny seq2seq trained to copy the first source token (sanity task)."""
    config = RewriterConfig(
        vocab_size=40, model_dim=32, num_layers=1, num_heads=2, hidden_dim=64,
        max_source_length=6, max_target_length=3, epochs=30, batch_size=16,
        learning_rate=5e-3,
    )
    model = Seq2SeqModel(config, pad_id=0, bos_id=1, eos_id=2)
    rng = np.random.default_rng(0)
    tokens = rng.integers(10, 40, size=(64, 1))
    sources = np.concatenate([tokens, rng.integers(10, 40, size=(64, 5))], axis=1)
    targets = np.concatenate(
        [np.full((64, 1), 1), tokens, np.full((64, 1), 2), np.zeros((64, 1), dtype=int)], axis=1
    )
    history = model.fit(sources, targets, seed=0)
    return model, sources, targets, history


class TestSeq2SeqModel:
    def test_training_reduces_loss(self, copy_task_model):
        _, _, _, history = copy_task_model
        losses = history.series("loss")
        assert losses[-1] < losses[0]

    def test_greedy_decode_learns_copy_task(self, copy_task_model):
        model, sources, targets, _ = copy_task_model
        decoded = model.greedy_decode(sources[:16], max_length=2)
        expected = targets[:16, 1]
        correct = sum(1 for out, want in zip(decoded, expected) if out and out[0] == want)
        assert correct >= 8  # far above the ~3% chance level

    def test_decode_respects_allowed_tokens(self, copy_task_model):
        model, sources, _, _ = copy_task_model
        decoded = model.greedy_decode(sources[:4], allowed_token_ids=[11, 12], max_length=3)
        for sequence in decoded:
            assert all(token in (11, 12) for token in sequence)

    def test_decode_respects_banned_tokens(self, copy_task_model):
        model, sources, targets, _ = copy_task_model
        banned = [int(targets[0, 1])]
        decoded = model.greedy_decode(sources[:1], banned_token_ids=banned, max_length=2)
        assert banned[0] not in decoded[0]

    def test_decode_min_length(self, copy_task_model):
        model, sources, _, _ = copy_task_model
        decoded = model.greedy_decode(sources[:4], min_length=3, max_length=4)
        assert all(len(sequence) >= 3 for sequence in decoded)

    def test_fit_validates_inputs(self, copy_task_model):
        model, sources, targets, _ = copy_task_model
        with pytest.raises(ValueError):
            model.fit(sources[:2], targets[:3])
        with pytest.raises(ValueError):
            model.fit(sources[:0], targets[:0])

    def test_batch_loss_is_positive_scalar(self, copy_task_model):
        model, sources, targets, _ = copy_task_model
        loss = model.batch_loss(sources[:4], targets[:4])
        assert loss.item() > 0


class TestMentionRewriter:
    @pytest.fixture(scope="class")
    def trained_rewriter(self, tiny_corpus, tiny_tokenizer, tiny_rewriter_config):
        rewriter = MentionRewriter(tiny_tokenizer, config=tiny_rewriter_config)
        pairs = source_domain_pairs(tiny_corpus, limit_per_domain=10)
        rewriter.fit(pairs, seed=0, max_pairs=60)
        return rewriter

    def test_vocab_size_expanded_to_tokenizer(self, tiny_tokenizer):
        config = RewriterConfig(vocab_size=10)
        rewriter = MentionRewriter(tiny_tokenizer, config=config)
        assert rewriter.config.vocab_size == tiny_tokenizer.vocab_size

    def test_rewrite_requires_training(self, tiny_corpus, tiny_tokenizer, tiny_rewriter_config):
        rewriter = MentionRewriter(tiny_tokenizer, config=tiny_rewriter_config)
        with pytest.raises(RuntimeError):
            rewriter.rewrite_entity(tiny_corpus.entities("lego")[0])

    def test_fit_requires_pairs(self, tiny_tokenizer, tiny_rewriter_config):
        rewriter = MentionRewriter(tiny_tokenizer, config=tiny_rewriter_config)
        with pytest.raises(ValueError):
            rewriter.fit([])

    def test_rewrite_returns_nonempty_strings(self, trained_rewriter, tiny_corpus):
        entities = tiny_corpus.entities("lego")[:5]
        surfaces = trained_rewriter.rewrite_entities(entities)
        assert len(surfaces) == 5
        assert all(isinstance(s, str) and s.strip() for s in surfaces)

    def test_rewrite_pairs_changes_source_tag(self, trained_rewriter, tiny_corpus):
        pairs = tiny_corpus.pairs("lego")[:4]
        rewritten = trained_rewriter.rewrite_pairs(pairs)
        assert all(p.source == REWRITTEN_SOURCE for p in rewritten)
        assert all(p.mention.source == REWRITTEN_SOURCE for p in rewritten)
        # Entities and contexts are preserved; only the surface changes.
        assert [p.entity.entity_id for p in rewritten] == [p.entity.entity_id for p in pairs]
        assert [p.mention.context_left for p in rewritten] == [p.mention.context_left for p in pairs]

    def test_denoising_batch_contains_sentinels(self, trained_rewriter, tiny_corpus, tiny_tokenizer):
        texts = tiny_corpus.documents.texts("lego")[:10]
        sources, targets = trained_rewriter.build_denoising_batch(texts, seed=0)
        sentinel_ids = {tiny_tokenizer.vocabulary.sentinel_id(i) for i in range(8)}
        assert sources.shape[0] == targets.shape[0] > 0
        assert any(any(int(t) in sentinel_ids for t in row) for row in sources)

    def test_denoising_batch_rejects_empty_texts(self, trained_rewriter):
        with pytest.raises(ValueError):
            trained_rewriter.build_denoising_batch(["a b", ""])


class TestSynthesisPipeline:
    def test_exact_match_data_surface_equals_title(self, tiny_corpus):
        pairs = build_exact_match_data(tiny_corpus, "yugioh", per_entity=1)
        title_pairs = [p for p in pairs if p.mention.mention_id.endswith("::title0")]
        assert all(p.mention.surface == p.entity.title for p in title_pairs)

    def test_build_synthetic_data_rewrites_surfaces(self, tiny_corpus, tiny_tokenizer, tiny_rewriter_config):
        rewriter = train_rewriter(
            tiny_corpus, tiny_tokenizer, config=tiny_rewriter_config, limit_per_domain=8, seed=0
        )
        exact = build_exact_match_data(tiny_corpus, "lego", per_entity=1)[:6]
        syn = build_synthetic_data(tiny_corpus, "lego", rewriter, exact_pairs=exact)
        assert len(syn) == len(exact)
        assert all(p.source == REWRITTEN_SOURCE for p in syn)

    def test_tokenizer_covers_corpus(self, tiny_corpus, tiny_tokenizer):
        sample_title = tiny_corpus.entities("star_trek")[0].title.lower().split()[0]
        assert sample_title in tiny_tokenizer.vocabulary
