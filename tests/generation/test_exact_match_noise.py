"""Unit tests for exact matching and noise injection."""

import pytest

from repro.generation import (
    EXACT_MATCH_SOURCE,
    NOISE_SOURCE,
    build_title_index,
    corrupt_pairs,
    exact_match_dataset,
    generate_title_mentions,
    match_mentions,
    mix_with_noise,
)
from repro.kb import Entity, EntityMentionPair, Mention


def entity(idx, title, domain="lego"):
    return Entity(
        entity_id=f"{domain}:{idx}",
        title=title,
        description=f"{title} is a set known for the bricks and the studs",
        domain=domain,
    )


def mention(idx, surface, gold=None, domain="lego"):
    return Mention(
        mention_id=f"{domain}:m{idx}",
        surface=surface,
        context_left="in the catalogue the",
        context_right="was listed for release",
        domain=domain,
        gold_entity_id=gold,
    )


class TestTitleIndex:
    def test_index_contains_normalised_titles(self):
        index = build_title_index([entity(1, "Golden Master")])
        assert "golden master" in index

    def test_index_contains_stripped_disambiguation(self):
        index = build_title_index([entity(1, "SORA (satellite)")])
        assert "sora" in index and "sora satellite" in index


class TestMatchMentions:
    def test_exact_title_match_links(self):
        entities = [entity(1, "Golden Master"), entity(2, "Silver Master")]
        mentions = [mention(1, "Golden Master"), mention(2, "unknown thing")]
        pairs = match_mentions(mentions, entities)
        assert len(pairs) == 1
        assert pairs[0].entity.entity_id == "lego:1"
        assert pairs[0].source == EXACT_MATCH_SOURCE

    def test_match_is_case_insensitive(self):
        pairs = match_mentions([mention(1, "golden master")], [entity(1, "Golden Master")])
        assert len(pairs) == 1

    def test_match_ignores_gold_labels(self):
        pairs = match_mentions([mention(1, "Golden Master", gold="lego:999")],
                               [entity(1, "Golden Master")])
        assert pairs[0].mention.gold_entity_id == "lego:1"

    def test_no_match_returns_empty(self):
        assert match_mentions([mention(1, "nothing here")], [entity(1, "Golden Master")]) == []


class TestGenerateTitleMentions:
    def test_per_entity_count(self):
        pairs = generate_title_mentions([entity(1, "Golden Master")], per_entity=3)
        assert len(pairs) == 3
        assert all(p.mention.surface == "Golden Master" for p in pairs)

    def test_contexts_use_description_tokens(self):
        pairs = generate_title_mentions([entity(1, "Golden Master")], per_entity=2)
        context = pairs[0].mention.context.lower()
        assert any(word in context for word in ("bricks", "studs", "known", "golden"))

    def test_invalid_per_entity(self):
        with pytest.raises(ValueError):
            generate_title_mentions([entity(1, "X Y")], per_entity=0)

    def test_deterministic(self):
        first = generate_title_mentions([entity(1, "Golden Master")], per_entity=2, seed=5)
        second = generate_title_mentions([entity(1, "Golden Master")], per_entity=2, seed=5)
        assert [p.mention.context for p in first] == [p.mention.context for p in second]

    def test_dataset_combines_both_sources(self):
        entities = [entity(1, "Golden Master")]
        mentions = [mention(1, "Golden Master")]
        pairs = exact_match_dataset(entities, mentions=mentions, per_entity=2)
        assert len(pairs) == 3


class TestNoise:
    def make_pairs(self, count=10):
        entities = [entity(i, f"Set Number {i}") for i in range(count)]
        return [
            EntityMentionPair(mention=mention(i, f"Set Number {i}", gold=f"lego:{i}"), entity=entities[i])
            for i in range(count)
        ], entities

    def test_corrupt_fraction(self):
        pairs, entities = self.make_pairs(10)
        normal, corrupted = corrupt_pairs(pairs, entities, fraction=0.4, seed=1)
        assert len(corrupted) == 4 and len(normal) == 6

    def test_corrupted_entities_are_wrong(self):
        pairs, entities = self.make_pairs(10)
        _, corrupted = corrupt_pairs(pairs, entities, fraction=0.5, seed=2)
        for pair in corrupted:
            assert pair.entity.entity_id != pair.mention.gold_entity_id
            assert pair.source == NOISE_SOURCE

    def test_zero_fraction_keeps_everything(self):
        pairs, entities = self.make_pairs(6)
        normal, corrupted = corrupt_pairs(pairs, entities, fraction=0.0)
        assert len(normal) == 6 and corrupted == []

    def test_invalid_fraction(self):
        pairs, entities = self.make_pairs(4)
        with pytest.raises(ValueError):
            corrupt_pairs(pairs, entities, fraction=1.5)

    def test_requires_two_entities(self):
        pairs, entities = self.make_pairs(1)
        with pytest.raises(ValueError):
            corrupt_pairs(pairs, entities, fraction=0.5)

    def test_mix_with_noise_preserves_count(self):
        pairs, entities = self.make_pairs(8)
        mixed = mix_with_noise(pairs, entities, fraction=0.5, seed=3)
        assert len(mixed) == 8
        assert sum(1 for p in mixed if p.source == NOISE_SOURCE) == 4
