"""Unit tests for the meta-training engine (repro.training)."""

import numpy as np
import pytest

from repro.data import pairs_from_mentions, split_domain
from repro.generation import build_exact_match_data
from repro.linking import BiEncoder
from repro.meta import few_shot_seed
from repro.training import BiEncoderMetaTask, EngineConfig, MetaTrainingEngine
from repro.utils.config import BiEncoderConfig, EncoderConfig, MetaConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=2, batch_size=8, learning_rate=5e-3)
META_JVP = MetaConfig(use_exact_per_example_gradients=False)


@pytest.fixture(scope="module")
def engine_data(tiny_corpus):
    domain = "yugioh"
    split = split_domain(tiny_corpus, domain, seed_size=20, dev_size=10)
    seed_pairs = few_shot_seed(pairs_from_mentions(tiny_corpus, domain, split.train, source="seed"))
    synthetic = build_exact_match_data(tiny_corpus, domain, per_entity=2)[:24]
    entities = tiny_corpus.entities(domain)
    return seed_pairs, synthetic, entities


def make_engine(tokenizer, entities, epochs=2, engine_config=None, meta_config=META_JVP):
    model = BiEncoder(BI_CFG, tokenizer)
    task = BiEncoderMetaTask(model, entities[:8])
    engine = MetaTrainingEngine(
        model,
        task,
        learning_rate=BI_CFG.learning_rate,
        batch_size=BI_CFG.batch_size,
        epochs=epochs,
        max_grad_norm=BI_CFG.max_grad_norm,
        meta_config=meta_config,
        engine_config=engine_config,
    )
    return model, engine


class TestEngineBasics:
    def test_history_matches_trainer_contract(self, engine_data, tiny_tokenizer):
        seed_pairs, synthetic, entities = engine_data
        _, engine = make_engine(tiny_tokenizer, entities)
        history = engine.fit(synthetic, seed_pairs, epochs=2, seed=0)
        assert len(history.series("loss")) == 2
        assert 0.0 <= history.last("selected_fraction") <= 1.0

    def test_empty_inputs_rejected(self, engine_data, tiny_tokenizer):
        seed_pairs, synthetic, entities = engine_data
        _, engine = make_engine(tiny_tokenizer, entities)
        with pytest.raises(ValueError):
            engine.fit([], seed_pairs)
        with pytest.raises(ValueError):
            engine.fit(synthetic, [])

    def test_step_metrics_are_structured(self, engine_data, tiny_tokenizer):
        seed_pairs, synthetic, entities = engine_data
        _, engine = make_engine(tiny_tokenizer, entities)
        engine.fit(synthetic, seed_pairs, epochs=1, seed=0)
        assert engine.step_metrics, "no step metrics recorded"
        for record in engine.step_metrics:
            assert record.epoch == 0
            assert record.learning_rate > 0.0
            assert 0.0 <= record.selected_fraction <= 1.0
            assert record.seed_gradient_norm >= 0.0
            assert record.duration_s >= 0.0
            assert record.skipped or np.isfinite(record.loss)
        assert [r.step for r in engine.step_metrics] == list(range(len(engine.step_metrics)))

    def test_warmup_schedule_is_wired(self, engine_data, tiny_tokenizer):
        seed_pairs, synthetic, entities = engine_data
        _, engine = make_engine(
            tiny_tokenizer, entities,
            engine_config=EngineConfig(warmup_fraction=0.5),
        )
        engine.fit(synthetic, seed_pairs, epochs=2, seed=0)
        rates = [r.learning_rate for r in engine.step_metrics if not r.skipped]
        # Warmup: the rate must actually move, and early steps stay below base.
        assert len(set(rates)) > 1
        assert rates[0] < BI_CFG.learning_rate

    def test_constant_rate_without_schedule(self, engine_data, tiny_tokenizer):
        seed_pairs, synthetic, entities = engine_data
        _, engine = make_engine(
            tiny_tokenizer, entities,
            engine_config=EngineConfig(use_warmup_schedule=False),
        )
        engine.fit(synthetic, seed_pairs, epochs=1, seed=0)
        assert engine.schedule is None
        assert engine.optimizer.lr == BI_CFG.learning_rate

    def test_gradient_accumulation_reduces_updates(self, engine_data, tiny_tokenizer):
        seed_pairs, synthetic, entities = engine_data
        _, plain = make_engine(tiny_tokenizer, entities)
        plain.fit(synthetic, seed_pairs, epochs=1, seed=0)
        _, accumulated = make_engine(
            tiny_tokenizer, entities,
            engine_config=EngineConfig(accumulation_steps=3),
        )
        accumulated.fit(synthetic, seed_pairs, epochs=1, seed=0)
        assert accumulated._optimizer_steps < plain._optimizer_steps
        assert accumulated._optimizer_steps >= 1


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, engine_data, tiny_tokenizer, tmp_path):
        seed_pairs, synthetic, entities = engine_data

        model_full, engine_full = make_engine(tiny_tokenizer, entities, epochs=4)
        history_full = engine_full.fit(synthetic, seed_pairs, epochs=4, seed=0)
        params_full = model_full.flatten_parameters()

        _, engine_first = make_engine(
            tiny_tokenizer, entities, epochs=4,
            engine_config=EngineConfig(checkpoint_dir=str(tmp_path), checkpoint_every=1),
        )
        engine_first.fit(synthetic, seed_pairs, epochs=2, seed=0)
        checkpoint = sorted(tmp_path.glob("epoch-*.npz"))[-1]

        model_resumed, engine_resumed = make_engine(tiny_tokenizer, entities, epochs=4)
        engine_resumed.restore(checkpoint)
        # The fit seed is ignored after restore: the checkpointed RNG stream
        # continues, so the run must match the uninterrupted one exactly.
        history_resumed = engine_resumed.fit(synthetic, seed_pairs, epochs=4, seed=12345)

        assert np.array_equal(params_full, model_resumed.flatten_parameters())
        assert history_full.series("loss") == history_resumed.series("loss")
        assert history_full.last("selected_fraction") == history_resumed.last("selected_fraction")
        assert len(engine_resumed.step_metrics) == len(engine_full.step_metrics)

    def test_checkpoint_rotation(self, engine_data, tiny_tokenizer, tmp_path):
        seed_pairs, synthetic, entities = engine_data
        _, engine = make_engine(
            tiny_tokenizer, entities, epochs=4,
            engine_config=EngineConfig(
                checkpoint_dir=str(tmp_path), checkpoint_every=1, keep_checkpoints=2
            ),
        )
        engine.fit(synthetic, seed_pairs, epochs=4, seed=0)
        remaining = sorted(path.name for path in tmp_path.glob("epoch-*.npz"))
        assert remaining == ["epoch-0003.npz", "epoch-0004.npz"]

    def test_restore_recovers_metrics(self, engine_data, tiny_tokenizer, tmp_path):
        seed_pairs, synthetic, entities = engine_data
        _, engine = make_engine(
            tiny_tokenizer, entities,
            engine_config=EngineConfig(checkpoint_dir=str(tmp_path), checkpoint_every=1),
        )
        engine.fit(synthetic, seed_pairs, epochs=1, seed=0)
        checkpoint = sorted(tmp_path.glob("epoch-*.npz"))[-1]
        _, fresh = make_engine(tiny_tokenizer, entities)
        fresh.restore(checkpoint)
        assert fresh._completed_epochs == 1
        assert fresh.history.series("loss") == engine.history.series("loss")[:1]
        assert [r.to_dict() for r in fresh.step_metrics] == [
            r.to_dict() for r in engine.step_metrics
        ]
