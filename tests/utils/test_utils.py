"""Unit tests for configuration, RNG helpers, registry and logging utilities."""

import logging

import numpy as np
import pytest

from repro.utils import (
    MetricHistory,
    Registry,
    batched_indices,
    default_config,
    derive_seed,
    make_rng,
    shuffled,
    spawn_rngs,
    timed,
)
from repro.utils.config import CorpusConfig, ExperimentConfig


class TestConfig:
    def test_default_config_is_frozen(self):
        config = default_config()
        with pytest.raises(Exception):
            config.recall_k = 99  # type: ignore[misc]

    def test_default_config_reseed(self):
        config = default_config(seed=42)
        assert config.seed == 42
        assert config.corpus.seed == 42

    def test_scaled_for_tests_is_smaller(self):
        config = ExperimentConfig()
        scaled = config.scaled_for_tests()
        assert scaled.corpus.entities_per_domain < config.corpus.entities_per_domain
        assert scaled.seed_size < config.seed_size

    def test_to_dict_roundtrip_keys(self):
        payload = CorpusConfig().to_dict()
        assert CorpusConfig(**payload) == CorpusConfig()


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(5).integers(0, 100) == make_rng(5).integers(0, 100)

    def test_spawn_rngs_independent(self):
        first, second = spawn_rngs(7, 2)
        assert first.integers(0, 10_000) != second.integers(0, 10_000)

    def test_derive_seed_stable_and_label_sensitive(self):
        assert derive_seed(1, "lego") == derive_seed(1, "lego")
        assert derive_seed(1, "lego") != derive_seed(1, "yugioh")

    def test_shuffled_does_not_mutate(self):
        items = [1, 2, 3, 4, 5]
        result = shuffled(items, make_rng(0))
        assert sorted(result) == items
        assert items == [1, 2, 3, 4, 5]

    def test_batched_indices_cover_everything(self):
        batches = list(batched_indices(10, 3, make_rng(0)))
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(10))
        assert all(len(batch) <= 3 for batch in batches)


class TestRegistry:
    def test_register_and_get(self):
        registry: Registry = Registry("demo")
        registry.add("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry and len(registry) == 1

    def test_duplicate_rejected(self):
        registry: Registry = Registry("demo")
        registry.add("a", 1)
        with pytest.raises(KeyError):
            registry.add("a", 2)

    def test_unknown_name_lists_known(self):
        registry: Registry = Registry("demo")
        registry.add("known", 1)
        with pytest.raises(KeyError, match="known"):
            registry.get("missing")

    def test_decorator_registration(self):
        registry: Registry = Registry("demo")

        @registry.register("func")
        def func():
            return "ok"

        assert registry.get("func")() == "ok"


class TestLoggingHelpers:
    def test_metric_history_basicstats(self):
        history = MetricHistory()
        history.add("loss", 2.0)
        history.add("loss", 1.0)
        assert history.last("loss") == 1.0
        assert history.mean("loss") == 1.5
        assert history.series("loss") == [2.0, 1.0]
        assert history.names() == ["loss"]

    def test_metric_history_missing_key(self):
        with pytest.raises(KeyError):
            MetricHistory().last("absent")

    def test_timed_records_elapsed(self):
        sink = {}
        with timed("block", sink):
            sum(range(1000))
        assert sink["block"] >= 0.0
