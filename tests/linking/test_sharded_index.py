"""Unit tests for the sharded entity index, blocked top-k and the LRU cache."""

import numpy as np
import pytest

from repro.kb import Entity
from repro.linking import (
    EntityIndex,
    LRUEmbeddingCache,
    RetrievalResult,
    ShardedEntityIndex,
    blocked_topk,
)


def make_entities(world, count, start=0):
    return [
        Entity(
            entity_id=f"{world}:{index}",
            title=f"{world} entity {index}",
            description=f"description of {world} {index}",
            domain=world,
        )
        for index in range(start, start + count)
    ]


class TestRetrievalResult:
    def test_rank_of_and_contains_are_dict_backed(self):
        result = RetrievalResult(entity_ids=["a", "b", "c"], scores=[3.0, 2.0, 1.0])
        assert result.contains("b")
        assert not result.contains("z")
        assert result.rank_of("a") == 0
        assert result.rank_of("c") == 2
        assert result.rank_of("z") is None
        assert result._rank_by_id == {"a": 0, "b": 1, "c": 2}

    def test_duplicate_ids_keep_first_rank(self):
        result = RetrievalResult(entity_ids=["a", "a"], scores=[1.0, 1.0])
        assert result.rank_of("a") == 0

    def test_top_id_and_len(self):
        assert RetrievalResult([], []).top_id is None
        assert RetrievalResult(["x"], [0.5]).top_id == "x"
        assert len(RetrievalResult(["x", "y"], [0.5, 0.4])) == 2


class TestBlockedTopk:
    def test_matches_full_sort_across_blocks(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(57, 8))
        queries = rng.normal(size=(5, 8))
        scores, positions = blocked_topk(queries, vectors, k=7, block_size=10)
        full = queries @ vectors.T
        for row in range(len(queries)):
            expected = np.sort(full[row])[::-1][:7]
            assert np.allclose(scores[row], expected)
            assert np.allclose(full[row][positions[row]], scores[row])

    def test_tie_breaking_prefers_lower_position(self):
        vectors = np.ones((6, 4))  # all entities score identically
        queries = np.ones((2, 4))
        _, positions = blocked_topk(queries, vectors, k=6, block_size=2)
        assert positions.tolist() == [[0, 1, 2, 3, 4, 5]] * 2

    def test_tie_breaking_exact_across_block_boundaries(self):
        # Regression: with many tied candidates spanning several blocks, the
        # selected subset itself must prefer the lowest positions — not just
        # sort whatever an arbitrary partition kept.
        vectors = np.ones((300, 4))
        scores, positions = blocked_topk(np.ones((1, 4)), vectors, k=2, block_size=64)
        assert positions.tolist() == [[0, 1]]
        assert np.allclose(scores, 4.0)

    def test_k_clamped_to_num_entities(self):
        vectors = np.eye(3)
        scores, positions = blocked_topk(np.eye(3)[:1], vectors, k=10)
        assert scores.shape == (1, 3)
        assert positions[0, 0] == 0


class TestEntityIndexBlocked:
    def test_search_is_deterministic_across_calls(self):
        entities = make_entities("lego", 20)
        rng = np.random.default_rng(3)
        index = EntityIndex(entities, rng.normal(size=(20, 6)), block_size=4)
        queries = rng.normal(size=(4, 6))
        first = index.search(queries, k=5)
        second = index.search(queries, k=5)
        for a, b in zip(first, second):
            assert a.entity_ids == b.entity_ids
            assert a.scores == b.scores

    def test_k_larger_than_index_returns_everything(self):
        entities = make_entities("lego", 4)
        index = EntityIndex(entities, np.eye(4))
        result = index.search(np.eye(4)[:1], k=64)[0]
        assert len(result) == 4

    def test_contains(self):
        entities = make_entities("lego", 3)
        index = EntityIndex(entities, np.eye(3))
        assert "lego:1" in index
        assert "other:1" not in index


class TestLRUEmbeddingCache:
    def test_eviction_drops_least_recently_used(self):
        cache = LRUEmbeddingCache(capacity=2)
        cache.put("a", np.zeros(2))
        cache.put("b", np.ones(2))
        assert cache.get("a") is not None  # refresh "a"; "b" is now stalest
        cache.put("c", np.full(2, 2.0))
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert len(cache) == 2

    def test_hit_and_miss_counters(self):
        cache = LRUEmbeddingCache(capacity=4)
        cache.put("a", np.zeros(2))
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_zero_capacity_never_stores(self):
        cache = LRUEmbeddingCache(capacity=0)
        cache.put("a", np.zeros(2))
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUEmbeddingCache(capacity=-1)


class TestShardedEntityIndex:
    def build(self, cache_size=4096):
        index = ShardedEntityIndex(cache_size=cache_size)
        index.add_shard("lego", make_entities("lego", 5), np.eye(5))
        index.add_shard("yugioh", make_entities("yugioh", 3), np.eye(3, 5) * 0.5)
        return index

    def test_worlds_and_len(self):
        index = self.build()
        assert index.worlds() == ["lego", "yugioh"]
        assert len(index) == 8
        assert index.num_shards == 2

    def test_empty_shard_contributes_no_candidates(self):
        index = self.build()
        index.add_shard("starwars", [])
        assert index.shard("starwars") is None
        results = index.search(np.eye(5)[:2], k=4)
        assert all(len(result) == 4 for result in results)
        results = index.search(np.eye(5)[:1], k=4, worlds=["starwars"])
        assert results[0].entity_ids == []
        assert results[0].scores == []

    def test_all_empty_shards_return_empty_results(self):
        index = ShardedEntityIndex()
        index.add_shard("empty", [])
        results = index.search(np.zeros((3, 5)), k=8)
        assert len(results) == 3
        assert all(result.entity_ids == [] for result in results)

    def test_k_larger_than_total_entities(self):
        index = self.build()
        result = index.search(np.ones((1, 5)), k=100)[0]
        assert len(result) == 8  # every entity of every shard

    def test_merge_tie_breaking_is_deterministic(self):
        index = ShardedEntityIndex()
        index.add_shard("alpha", make_entities("alpha", 2), np.ones((2, 3)))
        index.add_shard("beta", make_entities("beta", 2), np.ones((2, 3)))
        result = index.search(np.ones((1, 3)), k=4)[0]
        # Equal scores: shard insertion order first, then entity position.
        assert result.entity_ids == ["alpha:0", "alpha:1", "beta:0", "beta:1"]
        repeat = index.search(np.ones((1, 3)), k=4)[0]
        assert repeat.entity_ids == result.entity_ids

    def test_routed_search_groups_by_world(self):
        index = self.build()
        queries = np.eye(5)[:3]
        routed = index.search_routed(queries, k=2, routes=["lego", "yugioh", None])
        assert all(eid.startswith("lego:") for eid in routed[0].entity_ids)
        assert all(eid.startswith("yugioh:") for eid in routed[1].entity_ids)
        # The unrouted query falls back to a fan-out over all shards.
        fan_out = index.search(queries[2:], k=2)[0]
        assert routed[2].entity_ids == fan_out.entity_ids

    def test_routed_results_are_independent_instances(self):
        # Regression: the pre-fill placeholder list was built as
        # ``[RetrievalResult([], [])] * n`` — one shared mutable instance
        # replicated n times.  Every returned result must be its own object.
        index = self.build()
        index.add_shard("void", [])
        results = index.search_routed(np.zeros((3, 5)), k=2, routes=["void"] * 3)
        assert all(result.entity_ids == [] for result in results)
        assert len({id(result) for result in results}) == 3
        results[0].entity_ids.append("mutated")
        assert results[1].entity_ids == [] and results[2].entity_ids == []

    def test_routed_search_alignment_validated(self):
        index = self.build()
        with pytest.raises(ValueError):
            index.search_routed(np.eye(5)[:2], k=2, routes=["lego"])

    def test_routed_search_unknown_world_falls_back(self):
        index = self.build()
        routed = index.search_routed(np.eye(5)[:1], k=3, routes=["atlantis"])
        fan_out = index.search(np.eye(5)[:1], k=3)
        assert routed[0].entity_ids == fan_out[0].entity_ids

    def test_unknown_world_in_search_raises(self):
        index = self.build()
        with pytest.raises(KeyError):
            index.search(np.eye(5)[:1], k=2, worlds=["atlantis"])

    def test_duplicate_shard_rejected(self):
        index = self.build()
        with pytest.raises(ValueError):
            index.add_shard("lego", make_entities("lego", 2))

    def test_lazy_shard_built_on_first_search(self):
        calls = []

        def embed_fn(entities):
            calls.append(len(entities))
            return np.eye(len(entities), 4)

        index = ShardedEntityIndex(embed_fn=embed_fn)
        index.add_shard("lego", make_entities("lego", 4))
        index.add_shard("yugioh", make_entities("yugioh", 2))
        assert not index.is_materialized("lego")
        assert calls == []
        index.search(np.eye(4)[:1], k=2, worlds=["lego"])
        assert calls == [4]  # only the routed shard was embedded
        assert index.is_materialized("lego")
        assert not index.is_materialized("yugioh")
        index.search(np.eye(4)[:1], k=2, worlds=["lego"])
        assert calls == [4]  # materialisation happens exactly once

    def test_lazy_shard_without_embed_fn_raises(self):
        index = ShardedEntityIndex()
        index.add_shard("lego", make_entities("lego", 2))
        with pytest.raises(ValueError):
            index.shard("lego")

    def test_vector_lookup_uses_lru_cache(self):
        index = self.build(cache_size=2)
        first = index.vector("lego:0")
        assert np.allclose(first, np.eye(5)[0])
        assert index.embedding_cache.misses == 1
        index.vector("lego:0")
        assert index.embedding_cache.hits == 1
        # Fill beyond capacity: lego:0 becomes stalest after two more inserts.
        index.vector("lego:1")
        index.vector("lego:2")
        assert "lego:0" not in index.embedding_cache
        assert len(index.embedding_cache) == 2

    def test_entity_and_contains(self):
        index = self.build()
        assert index.entity("yugioh:1").domain == "yugioh"
        assert "yugioh:1" in index
        assert "yugioh:9" not in index

    def test_from_entities_groups_by_domain(self):
        entities = make_entities("lego", 3) + make_entities("yugioh", 2)
        index = ShardedEntityIndex.from_entities(entities, embed_fn=lambda e: np.eye(len(e), 4))
        assert index.worlds() == ["lego", "yugioh"]
        assert len(index) == 5

    def test_search_rejects_non_positive_k(self):
        index = self.build()
        with pytest.raises(ValueError):
            index.search(np.eye(5)[:1], k=0)
