"""Unit tests for the entity-linking models."""

import numpy as np
import pytest

from repro.data import pairs_from_mentions, split_domain
from repro.kb import Entity, Mention
from repro.linking import (
    BiEncoder,
    BiEncoderTrainer,
    BlinkPipeline,
    CrossEncoder,
    CrossEncoderTrainer,
    DL4ELTrainer,
    EntityIndex,
    NameMatchingLinker,
    build_ranking_examples,
    encode_pair_batch,
    recall_at_k,
    unique_entities,
)
from repro.linking.crossencoder import lexical_features
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)


@pytest.fixture(scope="module")
def domain_data(tiny_corpus):
    split = split_domain(tiny_corpus, "lego", seed_size=20, dev_size=10)
    seed_pairs = pairs_from_mentions(tiny_corpus, "lego", split.train, source="seed")
    entities = tiny_corpus.entities("lego")
    return split, seed_pairs, entities


class TestEncodersAndIndex:
    def test_encode_pair_batch_shapes(self, domain_data, tiny_tokenizer):
        _, pairs, _ = domain_data
        batch = encode_pair_batch(pairs[:6], tiny_tokenizer, max_length=32)
        assert batch.mention_ids.shape == (6, 32)
        assert batch.entity_ids.shape == (6, 32)
        assert np.allclose(batch.weights, 1.0)

    def test_encode_pair_batch_empty_raises(self, tiny_tokenizer):
        with pytest.raises(ValueError):
            encode_pair_batch([], tiny_tokenizer)

    def test_unique_entities_deduplicates(self, domain_data):
        _, pairs, _ = domain_data
        uniques = unique_entities(pairs + pairs)
        ids = [e.entity_id for e in uniques]
        assert len(ids) == len(set(ids))

    def test_entity_index_search_ranks_by_inner_product(self, domain_data):
        _, _, entities = domain_data
        vectors = np.eye(len(entities))[:, : max(4, len(entities))]
        vectors = np.eye(len(entities))
        index = EntityIndex(entities, vectors)
        result = index.search(vectors[3][None, :], k=2)[0]
        assert result.entity_ids[0] == entities[3].entity_id
        assert result.rank_of(entities[3].entity_id) == 0

    def test_entity_index_validates_inputs(self, domain_data):
        _, _, entities = domain_data
        with pytest.raises(ValueError):
            EntityIndex(entities, np.zeros((1, 4)))
        with pytest.raises(ValueError):
            EntityIndex([], np.zeros((0, 4)))

    def test_recall_at_k(self, domain_data):
        _, _, entities = domain_data
        index = EntityIndex(entities, np.eye(len(entities)))
        results = index.search(np.eye(len(entities))[:4], k=1)
        gold = [entities[i].entity_id for i in range(4)]
        assert recall_at_k(results, gold) == 1.0
        assert recall_at_k(results, ["missing"] * 4) == 0.0

    def test_search_k_validation(self, domain_data):
        _, _, entities = domain_data
        index = EntityIndex(entities, np.eye(len(entities)))
        with pytest.raises(ValueError):
            index.search(np.eye(len(entities))[:1], k=0)


class TestBiEncoder:
    def test_embeddings_are_unit_norm(self, domain_data, tiny_tokenizer):
        _, pairs, entities = domain_data
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        vectors = model.embed_entities(entities[:5])
        assert np.allclose(np.linalg.norm(vectors, axis=1), 1.0, atol=1e-6)

    def test_training_reduces_loss(self, domain_data, tiny_tokenizer):
        _, pairs, _ = domain_data
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        before = model.pairs_loss(pairs[:16]).item()
        BiEncoderTrainer(model, BI_CFG).fit(pairs, epochs=2, seed=0)
        after = model.pairs_loss(pairs[:16]).item()
        assert after < before

    def test_training_improves_recall(self, domain_data, tiny_tokenizer):
        split, pairs, entities = domain_data
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        index = model.build_index(entities)
        queries = model.embed_mentions(split.test)
        gold = [m.gold_entity_id for m in split.test]
        before = recall_at_k(index.search(queries, k=5), gold)
        BiEncoderTrainer(model, BI_CFG).fit(pairs, epochs=2, seed=0)
        index = model.build_index(entities)
        queries = model.embed_mentions(split.test)
        after = recall_at_k(index.search(queries, k=5), gold)
        assert after >= before

    def test_fit_rejects_empty(self, tiny_tokenizer):
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        with pytest.raises(ValueError):
            BiEncoderTrainer(model, BI_CFG).fit([])

    def test_pairs_loss_with_negatives_single_pair(self, domain_data, tiny_tokenizer):
        _, pairs, entities = domain_data
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        loss = model.pairs_loss_with_negatives(pairs[:1], entities[:8], reduction="sum")
        assert loss.item() > 0.0

    def test_pairs_loss_with_negatives_requires_negatives(self, domain_data, tiny_tokenizer):
        _, pairs, _ = domain_data
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        with pytest.raises(ValueError):
            model.pairs_loss_with_negatives(pairs[:1], [])


class TestCrossEncoder:
    def test_lexical_features_ranges(self, domain_data):
        _, pairs, _ = domain_data
        features = lexical_features(pairs[0].mention, pairs[0].entity)
        assert features.shape == (3,)
        assert np.all(features >= 0.0) and np.all(features <= 1.0)

    def test_exact_title_match_feature(self):
        entity = Entity(entity_id="d:1", title="Golden Master", description="a set", domain="d")
        mention = Mention(mention_id="d:m1", surface="Golden Master", context_left="", context_right="",
                          domain="d", gold_entity_id="d:1")
        assert lexical_features(mention, entity)[2] == 1.0

    def test_build_ranking_examples_structure(self, domain_data):
        _, pairs, entities = domain_data
        examples = build_ranking_examples(pairs[:10], entities, num_candidates=3, seed=0)
        for example in examples:
            assert len(example.candidates) == 3
            assert example.candidates[example.gold_index].entity_id == \
                next(p for p in pairs if p.mention.mention_id == example.mention.mention_id).entity.entity_id
            assert len({c.entity_id for c in example.candidates}) == 3

    def test_build_ranking_examples_validation(self, domain_data):
        _, pairs, entities = domain_data
        with pytest.raises(ValueError):
            build_ranking_examples(pairs[:2], entities, num_candidates=1)
        with pytest.raises(ValueError):
            build_ranking_examples(pairs[:2], entities[:1], num_candidates=3)

    def test_rank_and_predict(self, domain_data, tiny_tokenizer):
        _, pairs, entities = domain_data
        model = CrossEncoder(CX_CFG, tiny_tokenizer)
        candidates = entities[:4]
        ranked = model.rank(pairs[0].mention, candidates)
        assert len(ranked) == 4
        assert model.predict(pairs[0].mention, candidates) is ranked[0]
        assert model.predict(pairs[0].mention, []) is None

    def test_training_reduces_loss(self, domain_data, tiny_tokenizer):
        _, pairs, entities = domain_data
        model = CrossEncoder(CX_CFG, tiny_tokenizer)
        examples = build_ranking_examples(pairs[:12], entities, num_candidates=3, seed=0)
        history = CrossEncoderTrainer(model, CX_CFG).fit(examples, epochs=2, seed=0)
        losses = history.series("loss")
        assert losses[-1] <= losses[0]

    def test_fit_rejects_empty(self, tiny_tokenizer):
        model = CrossEncoder(CX_CFG, tiny_tokenizer)
        with pytest.raises(ValueError):
            CrossEncoderTrainer(model, CX_CFG).fit([])


class TestBlinkAndBaselines:
    def test_blink_end_to_end_predictions(self, domain_data, tiny_tokenizer):
        split, pairs, entities = domain_data
        pipeline = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
        pipeline.train(pairs, candidate_pool=entities, max_crossencoder_examples=12, seed=0)
        predictions = pipeline.predict(split.test[:10], entities, k=4)
        assert len(predictions) == 10
        for prediction in predictions:
            assert len(prediction.candidate_ids) == 4
            assert prediction.predicted_entity_id in prediction.candidate_ids

    def test_blink_train_requires_pairs(self, tiny_tokenizer):
        pipeline = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
        with pytest.raises(ValueError):
            pipeline.train([])

    def test_blink_predict_empty_mentions(self, domain_data, tiny_tokenizer):
        _, _, entities = domain_data
        pipeline = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
        assert pipeline.predict([], entities) == []

    def test_dl4el_trainer_runs(self, domain_data, tiny_tokenizer):
        _, pairs, _ = domain_data
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        history = DL4ELTrainer(model, BI_CFG, noise_ratio=0.3).fit(pairs, epochs=1, seed=0)
        assert len(history.series("loss")) == 1

    def test_dl4el_validation(self, domain_data, tiny_tokenizer):
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        with pytest.raises(ValueError):
            DL4ELTrainer(model, noise_ratio=1.5)
        with pytest.raises(ValueError):
            DL4ELTrainer(model, temperature=0.0)

    def test_dl4el_weights_keep_low_loss_examples(self, domain_data, tiny_tokenizer):
        model = BiEncoder(BI_CFG, tiny_tokenizer)
        trainer = DL4ELTrainer(model, BI_CFG, noise_ratio=0.5)
        weights = trainer._denoising_weights(np.array([0.1, 5.0, 0.2, 4.0]))
        assert weights[0] > weights[1]
        assert weights[2] > weights[3]

    def test_name_matching_baseline(self, domain_data):
        split, _, entities = domain_data
        linker = NameMatchingLinker(entities)
        accuracy = linker.accuracy(split.test)
        coverage = linker.coverage(split.test)
        assert 0.0 <= accuracy <= 1.0
        assert accuracy <= coverage

    def test_name_matching_empty_mentions(self, domain_data):
        _, _, entities = domain_data
        linker = NameMatchingLinker(entities)
        assert linker.accuracy([]) == 0.0
        assert linker.coverage([]) == 0.0


class TestEntityCacheEviction:
    def test_overwrite_at_capacity_does_not_evict(self, monkeypatch):
        # Regression: rewriting an existing key used to evict an unrelated
        # (oldest) entry even though the cache was not growing.
        from repro.linking import crossencoder

        monkeypatch.setattr(crossencoder, "ENTITY_CACHE_CAPACITY", 2)
        cache = {}
        crossencoder._cache_put(cache, "a", 1)
        crossencoder._cache_put(cache, "b", 2)
        crossencoder._cache_put(cache, "a", 3)  # overwrite while full
        assert cache == {"a": 3, "b": 2}

    def test_new_key_at_capacity_evicts_oldest(self, monkeypatch):
        from repro.linking import crossencoder

        monkeypatch.setattr(crossencoder, "ENTITY_CACHE_CAPACITY", 2)
        cache = {}
        crossencoder._cache_put(cache, "a", 1)
        crossencoder._cache_put(cache, "b", 2)
        crossencoder._cache_put(cache, "c", 3)
        assert cache == {"b": 2, "c": 3}
