"""Tests for the cross-encoder's batched ranking loss."""

import numpy as np
import pytest

from repro.data import pairs_from_mentions, split_domain
from repro.generation import build_exact_match_data
from repro.linking import CrossEncoder
from repro.linking.crossencoder import build_ranking_examples
from repro.meta import MetaCrossEncoderTrainer, few_shot_seed
from repro.utils.config import CrossEncoderConfig, EncoderConfig, MetaConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3,
                            learning_rate=5e-3)


@pytest.fixture(scope="module")
def ranking_data(tiny_corpus, tiny_tokenizer):
    domain = "yugioh"
    split = split_domain(tiny_corpus, domain, seed_size=20, dev_size=10)
    seed_pairs = few_shot_seed(pairs_from_mentions(tiny_corpus, domain, split.train, source="seed"))
    synthetic = build_exact_match_data(tiny_corpus, domain, per_entity=2)
    entities = tiny_corpus.entities(domain)
    model = CrossEncoder(CX_CFG, tiny_tokenizer)
    examples = build_ranking_examples(synthetic[:10], entities, 3, seed=0)
    seed_examples = build_ranking_examples(seed_pairs[:6], entities, 3, seed=1)
    return model, examples, seed_examples


class TestExamplesLoss:
    def test_empty_list_raises_value_error(self, ranking_data):
        model, _, _ = ranking_data
        with pytest.raises(ValueError, match="at least one ranking example"):
            model.examples_loss([])

    def test_trainer_loss_fn_empty_raises_value_error(self, ranking_data):
        model, _, _ = ranking_data
        trainer = MetaCrossEncoderTrainer(model, CX_CFG, MetaConfig())
        with pytest.raises(ValueError, match="at least one ranking example"):
            trainer._loss_fn([])

    def test_batched_matches_per_example_loop(self, ranking_data):
        model, examples, _ = ranking_data
        model.eval()
        batched = model.examples_loss(examples, reduction="none").data
        loop = np.array([model.example_loss(e).item() for e in examples])
        assert np.allclose(batched, loop, atol=1e-10)

    def test_mixed_candidate_counts_keep_example_order(self, ranking_data):
        model, examples, _ = ranking_data
        mixed = [
            e if index % 3 else type(e)(
                mention=e.mention,
                candidates=e.candidates[:2],
                gold_index=min(e.gold_index, 1),
                weight=e.weight,
            )
            for index, e in enumerate(examples)
        ]
        model.eval()
        batched = model.examples_loss(mixed, reduction="none").data
        loop = np.array([model.example_loss(e).item() for e in mixed])
        assert np.allclose(batched, loop, atol=1e-10)

    def test_batched_gradient_matches_loop(self, ranking_data):
        model, examples, _ = ranking_data
        model.eval()  # deterministic forwards: gradients must agree exactly
        model.zero_grad()
        model.examples_loss(examples[:4], reduction="sum").backward()
        batched_grad = model.gradient_vector()
        model.zero_grad()
        total = None
        for example in examples[:4]:
            loss = model.example_loss(example)
            total = loss if total is None else total + loss
        total.backward()
        loop_grad = model.gradient_vector()
        model.zero_grad()
        assert np.allclose(batched_grad, loop_grad, atol=1e-10)

    def test_zero_weight_examples_still_counted_in_sum(self, ranking_data):
        """The weighted sum runs over all examples (zero terms included), so
        the logged epoch loss is the same weighted-sum quantity the bi-encoder
        records instead of silently dropping unselected examples."""
        model, examples, _ = ranking_data
        model.eval()
        weights = np.zeros(len(examples))
        weights[1], weights[4] = 0.75, 0.25
        weighted = model.examples_loss(examples, reduction="sum", sample_weights=weights).item()
        individual = [model.example_loss(e).item() for e in examples]
        assert weighted == pytest.approx(0.75 * individual[1] + 0.25 * individual[4])

    def test_invalid_examples_rejected(self, ranking_data):
        model, examples, _ = ranking_data
        bad_gold = type(examples[0])(
            mention=examples[0].mention,
            candidates=examples[0].candidates,
            gold_index=len(examples[0].candidates),
            weight=1.0,
        )
        with pytest.raises(ValueError, match="out of range"):
            model.examples_loss([bad_gold])
        no_candidates = type(examples[0])(
            mention=examples[0].mention, candidates=[], gold_index=0, weight=1.0
        )
        with pytest.raises(ValueError, match="no candidates"):
            model.examples_loss([no_candidates])

    def test_unknown_reduction_rejected(self, ranking_data):
        model, examples, _ = ranking_data
        with pytest.raises(ValueError, match="unknown reduction"):
            model.examples_loss(examples[:2], reduction="median")


class TestMetaCrossEncoderTrainer:
    def test_fit_records_weighted_sum_epoch_loss(self, ranking_data):
        model, examples, seed_examples = ranking_data
        trainer = MetaCrossEncoderTrainer(
            model, CX_CFG, MetaConfig(use_exact_per_example_gradients=False)
        )
        history = trainer.fit(examples, seed_examples, epochs=1, seed=0)
        assert len(history.series("loss")) == 1
        recorded = [m for m in trainer.engine.step_metrics if not m.skipped]
        if recorded:
            assert np.isfinite(history.last("loss"))
            assert history.last("loss") == pytest.approx(
                float(np.mean([m.loss for m in recorded]))
            )
