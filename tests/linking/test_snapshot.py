"""Tests for ShardedEntityIndex snapshots (save / load round trips)."""

import json

import numpy as np
import pytest

from repro.kb import Entity
from repro.linking import ShardedEntityIndex
from repro.linking.candidates import (
    SNAPSHOT_ARRAYS,
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MANIFEST,
    SNAPSHOT_VECTORS,
)


def make_entities(world, count):
    return [
        Entity(
            entity_id=f"{world}:{index}",
            title=f"{world} entity {index}",
            description=f"description of {world} {index}",
            domain=world,
        )
        for index in range(count)
    ]


class CountingEmbedder:
    """Deterministic embed_fn that records how often it is called."""

    def __init__(self, dim=6):
        self.dim = dim
        self.calls = []

    def __call__(self, entities):
        self.calls.append([entity.entity_id for entity in entities])
        rng = np.random.default_rng(sum(len(e.entity_id) for e in entities))
        return rng.normal(size=(len(entities), self.dim))


def build_index(embedder):
    index = ShardedEntityIndex(embed_fn=embedder, block_size=4, cache_size=16)
    index.add_shard("lego", make_entities("lego", 5))
    index.add_shard("yugioh", make_entities("yugioh", 3))
    index.add_shard("starwars", make_entities("starwars", 4))
    index.add_shard("empty", [])
    return index


class TestSnapshotRoundTrip:
    def test_search_rankings_identical_after_reload(self, tmp_path):
        embedder = CountingEmbedder()
        index = build_index(embedder)
        queries = np.random.default_rng(1).normal(size=(4, 6))
        before = index.search(queries, k=6)  # materialises every shard

        index.save(tmp_path / "snap")
        restored = ShardedEntityIndex.load(tmp_path / "snap")
        after = restored.search(queries, k=6)
        for a, b in zip(before, after):
            # Rankings are identical; scores agree to the last bits (the
            # matmul may differ by ~1 ulp depending on buffer alignment).
            assert a.entity_ids == b.entity_ids
            assert np.allclose(a.scores, b.scores, rtol=0.0, atol=1e-12)

    def test_vectors_round_trip_bit_identical(self, tmp_path):
        embedder = CountingEmbedder()
        index = build_index(embedder)
        index.shard("lego")
        index.save(tmp_path / "snap")
        restored = ShardedEntityIndex.load(tmp_path / "snap")
        assert np.array_equal(index.shard("lego").vectors, restored.shard("lego").vectors)

    def test_save_never_materialises(self, tmp_path):
        embedder = CountingEmbedder()
        index = build_index(embedder)
        index.save(tmp_path / "snap")
        assert embedder.calls == []

    def test_cold_shards_stay_cold_and_lazy_after_load(self, tmp_path):
        embedder = CountingEmbedder()
        index = build_index(embedder)
        index.search(np.zeros((1, 6)), k=2, worlds=["lego"])  # warm lego only
        index.save(tmp_path / "snap")

        fresh_embedder = CountingEmbedder()
        restored = ShardedEntityIndex.load(tmp_path / "snap", embed_fn=fresh_embedder)
        assert restored.is_materialized("lego")
        assert not restored.is_materialized("yugioh")
        assert not restored.is_materialized("starwars")
        # Searching a cold shard embeds it on demand through the new embed_fn.
        restored.search(np.zeros((1, 6)), k=2, worlds=["yugioh"])
        assert fresh_embedder.calls == [["yugioh:0", "yugioh:1", "yugioh:2"]]

    def test_shard_order_and_entities_preserved(self, tmp_path):
        index = build_index(CountingEmbedder())
        index.save(tmp_path / "snap")
        restored = ShardedEntityIndex.load(tmp_path / "snap", embed_fn=CountingEmbedder())
        assert restored.worlds() == ["lego", "yugioh", "starwars", "empty"]
        assert len(restored) == len(index)
        assert restored.entity("starwars:2") == index.entity("starwars:2")

    def test_empty_shard_round_trips(self, tmp_path):
        index = build_index(CountingEmbedder())
        index.save(tmp_path / "snap")
        restored = ShardedEntityIndex.load(tmp_path / "snap")
        assert restored.shard("empty") is None
        assert restored.search(np.zeros((1, 6)), k=2, worlds=["empty"])[0].entity_ids == []

    def test_load_without_embed_fn_fails_only_on_cold_search(self, tmp_path):
        embedder = CountingEmbedder()
        index = build_index(embedder)
        index.shard("lego")
        index.save(tmp_path / "snap")
        restored = ShardedEntityIndex.load(tmp_path / "snap")
        # Materialised shards serve immediately ...
        assert len(restored.search(np.zeros((1, 6)), k=2, worlds=["lego"])[0]) == 2
        # ... but a cold shard has no vectors and no way to build them.
        with pytest.raises(ValueError):
            restored.search(np.zeros((1, 6)), k=2, worlds=["yugioh"])

    def test_block_size_and_cache_size_persist_and_override(self, tmp_path):
        index = build_index(CountingEmbedder())
        index.save(tmp_path / "snap")
        restored = ShardedEntityIndex.load(tmp_path / "snap")
        assert restored._block_size == 4
        assert restored.embedding_cache.capacity == 16
        overridden = ShardedEntityIndex.load(tmp_path / "snap", block_size=2, cache_size=3)
        assert overridden._block_size == 2
        assert overridden.embedding_cache.capacity == 3

    def test_unsupported_format_version_rejected(self, tmp_path):
        index = build_index(CountingEmbedder())
        path = index.save(tmp_path / "snap")
        manifest = json.loads((path / SNAPSHOT_MANIFEST).read_text())
        manifest["format_version"] = 999
        (path / SNAPSHOT_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            ShardedEntityIndex.load(path)

    def test_snapshot_files_written(self, tmp_path):
        index = build_index(CountingEmbedder())
        index.shard("lego")  # materialise one shard so arrays exist
        path = index.save(tmp_path / "snap")
        assert (path / SNAPSHOT_MANIFEST).exists()
        manifest = json.loads((path / SNAPSHOT_MANIFEST).read_text())
        assert manifest["format_version"] == SNAPSHOT_FORMAT_VERSION
        # Version 2 writes one raw .npy per array (mmap-able), not an npz.
        arrays = sorted(p.name for p in (path / SNAPSHOT_ARRAYS).glob("*.npy"))
        assert arrays == ["shard_0.npy"]

    def test_version1_npz_snapshot_still_loads(self, tmp_path):
        """Snapshots written by the old (v1) format remain readable."""
        embedder = CountingEmbedder()
        index = build_index(embedder)
        queries = np.random.default_rng(1).normal(size=(4, 6))
        before = index.search(queries, k=6)  # materialises every shard

        # Write the v1 layout by hand: manifest + one npz of shard arrays.
        path = tmp_path / "snap-v1"
        path.mkdir()
        shards = []
        arrays = {}
        for position, world in enumerate(index.worlds()):
            shard = index.shard(world)
            entities = index._shard_entities[world]
            shards.append(
                {
                    "world": world,
                    "materialized": shard is not None,
                    "entities": [entity.to_dict() for entity in entities],
                }
            )
            if shard is not None:
                arrays[f"shard_{position}"] = shard.vectors
        manifest = {"format_version": 1, "block_size": 4, "cache_size": 16, "shards": shards}
        (path / SNAPSHOT_MANIFEST).write_text(json.dumps(manifest))
        np.savez(path / SNAPSHOT_VECTORS, **arrays)

        restored = ShardedEntityIndex.load(path)
        after = restored.search(queries, k=6)
        for a, b in zip(before, after):
            assert a.entity_ids == b.entity_ids
