"""Shared fixtures: small corpora and tokenizers reused across test modules."""

import pytest

from repro.data import generate_corpus
from repro.generation import build_tokenizer_for_corpus
from repro.utils.config import CorpusConfig, RewriterConfig


@pytest.fixture(scope="session")
def tiny_corpus():
    """A small but complete 16-domain corpus (fast to generate)."""
    return generate_corpus(CorpusConfig(entities_per_domain=24, mentions_per_domain=90, seed=11))


@pytest.fixture(scope="session")
def tiny_tokenizer(tiny_corpus):
    return build_tokenizer_for_corpus(tiny_corpus, max_vocab_size=2048, max_length=32)


@pytest.fixture(scope="session")
def tiny_rewriter_config():
    """Rewriter sized for unit tests (single short epoch)."""
    return RewriterConfig(
        model_dim=32,
        num_layers=1,
        num_heads=2,
        hidden_dim=64,
        max_source_length=32,
        max_target_length=8,
        epochs=1,
        denoising_epochs=1,
        batch_size=16,
    )
