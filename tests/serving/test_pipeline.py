"""Tests for the batched serving pipeline (repro.serving)."""

import numpy as np
import pytest

from repro.data import split_domain
from repro.linking import BlinkPipeline, CrossEncoder
from repro.serving import EntityLinkingPipeline, LinkingResult
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)


@pytest.fixture(scope="module")
def serving_setup(tiny_corpus, tiny_tokenizer):
    split = split_domain(tiny_corpus, "lego", seed_size=20, dev_size=10)
    entities = tiny_corpus.entities("lego")
    blink = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
    return blink, entities, split.test[:12]


class TestEntityLinkingPipeline:
    def test_link_returns_structured_results(self, serving_setup):
        blink, entities, mentions = serving_setup
        pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=4)
        results = pipeline.link(mentions)
        assert len(results) == len(mentions)
        for mention, result in zip(mentions, results):
            assert isinstance(result, LinkingResult)
            assert result.mention_id == mention.mention_id
            assert result.gold_entity_id == mention.gold_entity_id
            assert len(result.candidate_ids) == 4
            assert len(result.retrieval_scores) == 4
            assert result.rerank_scores is not None
            assert len(result.rerank_scores) == 4
            assert result.predicted_entity_id in result.candidate_ids
            # Retrieval scores are ranked by decreasing inner product.
            assert result.retrieval_scores == sorted(result.retrieval_scores, reverse=True)

    def test_batch_size_invariance(self, serving_setup):
        blink, entities, mentions = serving_setup
        index = blink.biencoder.build_sharded_index(entities)
        big = EntityLinkingPipeline(blink.biencoder, index, blink.crossencoder, k=4, batch_size=64)
        small = EntityLinkingPipeline(blink.biencoder, index, blink.crossencoder, k=4, batch_size=3)
        big_results = big.link(mentions)
        small_results = small.link(mentions)
        for a, b in zip(big_results, small_results):
            assert a.candidate_ids == b.candidate_ids
            assert a.predicted_entity_id == b.predicted_entity_id

    def test_matches_blink_predict(self, serving_setup):
        blink, entities, mentions = serving_setup
        pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=4)
        serving_results = pipeline.link(mentions)
        predictions = blink.predict(mentions, entities, k=4)
        for result, prediction in zip(serving_results, predictions):
            assert result.candidate_ids == prediction.candidate_ids
            assert result.predicted_entity_id == prediction.predicted_entity_id
            assert result.correct == prediction.correct
            assert result.gold_in_candidates == prediction.gold_in_candidates

    def test_rerank_disabled_predicts_top_candidate(self, serving_setup):
        blink, entities, mentions = serving_setup
        pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=4, rerank=False)
        for result in pipeline.link(mentions):
            assert result.rerank_scores is None
            assert result.predicted_entity_id == result.candidate_ids[0]

    def test_no_crossencoder_means_no_rerank(self, serving_setup):
        blink, entities, mentions = serving_setup
        index = blink.biencoder.build_sharded_index(entities)
        pipeline = EntityLinkingPipeline(blink.biencoder, index, crossencoder=None, k=4)
        assert pipeline.rerank is False
        result = pipeline.link(mentions[:1])[0]
        assert result.predicted_entity_id == result.candidate_ids[0]

    def test_empty_input(self, serving_setup):
        blink, entities, _ = serving_setup
        pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=4)
        assert pipeline.link([]) == []

    def test_link_one(self, serving_setup):
        blink, entities, mentions = serving_setup
        pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=4)
        result = pipeline.link_one(mentions[0])
        assert result.mention_id == mentions[0].mention_id

    def test_stats_accumulate(self, serving_setup):
        blink, entities, mentions = serving_setup
        pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=4, batch_size=4)
        pipeline.link(mentions[:8])
        stats = pipeline.stats
        assert stats.mentions == 8
        assert stats.batches == 2
        assert set(stats.stage_seconds) == {"tokenize", "embed", "retrieve", "rerank"}
        assert stats.throughput() > 0
        stats.reset()
        assert stats.mentions == 0 and stats.total_seconds == 0.0

    def test_flat_index_supported(self, serving_setup):
        blink, entities, mentions = serving_setup
        flat = blink.biencoder.build_index(entities)
        sharded = blink.biencoder.build_sharded_index(entities)
        flat_pipeline = EntityLinkingPipeline(blink.biencoder, flat, blink.crossencoder, k=4)
        sharded_pipeline = EntityLinkingPipeline(blink.biencoder, sharded, blink.crossencoder, k=4)
        for a, b in zip(flat_pipeline.link(mentions), sharded_pipeline.link(mentions)):
            assert a.candidate_ids == b.candidate_ids
            assert a.predicted_entity_id == b.predicted_entity_id

    def test_from_blink_requires_entities_or_index(self, serving_setup):
        blink, _, _ = serving_setup
        with pytest.raises(ValueError):
            EntityLinkingPipeline.from_blink(blink)

    def test_invalid_parameters_rejected(self, serving_setup):
        blink, entities, _ = serving_setup
        with pytest.raises(ValueError):
            EntityLinkingPipeline.from_blink(blink, entities, k=0)
        with pytest.raises(ValueError):
            EntityLinkingPipeline.from_blink(blink, entities, batch_size=0)


class TestBatchedEncoders:
    def test_embed_mentions_chunking_matches_single_pass(self, serving_setup):
        blink, _, mentions = serving_setup
        chunked = blink.biencoder.embed_mentions(mentions, batch_size=5)
        single = blink.biencoder.embed_mentions(mentions, batch_size=None)
        assert chunked.shape == single.shape
        assert np.allclose(chunked, single)

    def test_embed_entities_empty_sequence(self, serving_setup):
        blink, _, _ = serving_setup
        vectors = blink.biencoder.embed_entities([])
        assert vectors.shape == (0, ENC.model_dim)

    def test_crossencoder_batch_matches_per_mention(self, serving_setup, tiny_tokenizer):
        blink, entities, mentions = serving_setup
        model = CrossEncoder(CX_CFG, tiny_tokenizer)
        candidate_lists = [entities[:4], entities[2:5], []]
        batch_scores = model.score_candidate_batch(mentions[:3], candidate_lists)
        assert len(batch_scores) == 3
        assert batch_scores[2].shape == (0,)
        for mention, candidates, scores in zip(mentions[:3], candidate_lists, batch_scores):
            if not candidates:
                continue
            single = model.score_candidates(mention, candidates)
            assert np.allclose(scores, single, atol=1e-9)

    def test_crossencoder_predict_batch(self, serving_setup, tiny_tokenizer):
        blink, entities, mentions = serving_setup
        model = CrossEncoder(CX_CFG, tiny_tokenizer)
        best = model.predict_batch(mentions[:2], [entities[:3], []])
        assert best[0] in entities[:3]
        assert best[1] is None

    def test_candidate_features_match_lexical_features(self, serving_setup, tiny_tokenizer):
        # The cached fast path must stay byte-for-byte equivalent to the
        # reference implementation the unit tests pin down.
        from repro.linking.crossencoder import LEXICAL_FEATURE_SCALE, lexical_features

        blink, entities, mentions = serving_setup
        model = CrossEncoder(CX_CFG, tiny_tokenizer)
        for mention in mentions[:4]:
            reference = np.stack(
                [lexical_features(mention, candidate) for candidate in entities[:6]]
            ) * LEXICAL_FEATURE_SCALE
            fast = model._candidate_features(mention, entities[:6])
            assert np.allclose(fast, reference)

    def test_cross_input_ids_match_tokenizer_encode_cross(self, serving_setup, tiny_tokenizer):
        from repro.linking.encoders import encode_cross_inputs

        blink, entities, mentions = serving_setup
        model = CrossEncoder(CX_CFG, tiny_tokenizer)
        for mention in mentions[:4]:
            reference = encode_cross_inputs(
                mention, entities[:6], tiny_tokenizer, CX_CFG.encoder.max_length
            )
            assert np.array_equal(model._cross_input_ids(mention, entities[:6]), reference)

    def test_crossencoder_batch_alignment_validated(self, serving_setup, tiny_tokenizer):
        blink, entities, mentions = serving_setup
        model = CrossEncoder(CX_CFG, tiny_tokenizer)
        with pytest.raises(ValueError):
            model.score_candidate_batch(mentions[:2], [entities[:2]])
