"""Concurrent-access tests for ClusterStats.

The router records submits/completions/sheds from many dispatcher and
callback threads while each replica's scheduler mutates its own
:class:`~repro.serving.pipeline.PipelineStats`; monitoring snapshots and
between-scenario resets race all of it.  These tests mirror
``test_stats_threading.py`` one level up: every aggregate read must be an
internally consistent merge of the per-replica stats, and reset must never
corrupt in-flight recording.
"""

import threading

from repro.serving.cluster import ClusterStats
from repro.serving.pipeline import PipelineStats


class FakeReplica:
    """The minimal surface ClusterStats touches: stats + display fields."""

    def __init__(self, name):
        self.name = name
        self.state = "healthy"
        self.pending = 0
        self.stats = PipelineStats()


class FakePool:
    def __init__(self, size):
        self.replicas = tuple(FakeReplica(f"replica-{i}") for i in range(size))


def hammer(threads):
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)
        return run

    workers = [threading.Thread(target=wrap(fn)) for fn in threads]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=30.0)
    assert not errors, errors


class TestClusterStatsThreading:
    def test_router_counters_race_snapshot_and_reset(self):
        pool = FakePool(3)
        stats = ClusterStats(pool)
        rounds = 2000

        def recorder():
            for i in range(rounds):
                stats.record_submit()
                stats.record_completed(i * 1e-6, requeued=(i % 7 == 0))
                stats.record_shed("batch")
                stats.record_requeue()

        def replica_writer(replica):
            def run():
                for _ in range(rounds):
                    replica.stats.record("embed", 1e-6)
                    replica.stats.record_batch(2)
            return run

        def reader():
            for _ in range(rounds // 10):
                shot = stats.snapshot()
                agg = shot["aggregate"]
                # Merged counters are internally consistent: mentions are
                # recorded 2-per-batch, so the merge must preserve that.
                assert agg["mentions"] == 2 * agg["batches"]
                assert shot["router"]["shed_total"] >= 0
                summary = shot["latency"]
                assert summary["p50"] <= summary["p90"] <= summary["p99"]

        def resetter():
            for _ in range(rounds // 40):
                stats.reset()

        hammer([
            recorder, recorder,
            *(replica_writer(r) for r in pool.replicas),
            reader, reader, resetter,
        ])
        # Still usable and exact after the storm settles.
        stats.reset()
        stats.record_submit()
        stats.record_completed(0.5, requeued=False)
        pool.replicas[0].stats.record_batch(4)
        shot = stats.snapshot()
        assert shot["router"]["submitted"] == 1
        assert shot["router"]["completed"] == 1
        assert shot["aggregate"]["mentions"] == 4
        assert stats.latency_summary()["count"] == 1

    def test_death_and_recovery_tracking_race(self):
        pool = FakePool(2)
        stats = ClusterStats(pool)
        rounds = 2000

        def killer():
            for _ in range(rounds // 20):
                stats.record_death()

        def completer():
            for i in range(rounds):
                stats.record_completed(1e-6, requeued=True)

        def reader():
            for _ in range(rounds // 10):
                recovery = stats.recovery_seconds
                assert recovery is None or recovery >= 0.0

        hammer([killer, completer, reader, reader])
        assert stats.deaths == rounds // 20
        assert stats.recovery_seconds is not None
        assert stats.recovery_seconds >= 0.0

    def test_per_replica_breakdown_matches_totals(self):
        pool = FakePool(4)
        stats = ClusterStats(pool)
        for index, replica in enumerate(pool.replicas):
            for _ in range(index + 1):
                replica.stats.record_batch(3)
        shot = stats.snapshot()
        assert [r["batches"] for r in shot["per_replica"]] == [1, 2, 3, 4]
        assert shot["aggregate"]["batches"] == 10
        assert shot["aggregate"]["mentions"] == 30
        assert stats.mentions == 30 and stats.batches == 10
