"""Chaos tests for the self-healing layer: real faults, wall-clock soak.

The acceptance scenario for PR 8 lives here: a :class:`FaultPlan` kills a
replica repeatedly for a full load scenario and the run completes with
zero lost requests and **no manual** ``restart()``/``health_check()``
calls — the :class:`Supervisor` alone recovers every kill.  Also here:
crash-loop quarantine with a genuinely unrestartable slot, brownout
under real overload, and the two race conditions the ISSUE calls out
(``Router.close()`` vs. in-flight requeue, ``health_check()`` vs. a
concurrent ``pool.restart()``).  All of it sleeps through injected
faults, so the module carries the ``chaos`` marker and tier-1 skips it.
"""

import threading
import time

import pytest

from repro.bench import LoadHarness, PoissonArrivals, SLOSpec, UniformMentionSampler, Workload
from repro.data import split_domain
from repro.linking import BlinkPipeline
from repro.serving import (
    BrownoutController,
    BrownoutPolicy,
    EntityLinkingPipeline,
    FaultEvent,
    FaultPlan,
    ReplicaPool,
    RestartPolicy,
    Router,
    Supervisor,
)
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig

pytestmark = pytest.mark.chaos

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)

RESULT_TIMEOUT = 30.0

#: Fast repair for tests: no backoff, immediate retries, generous budget.
EAGER_REPAIR = RestartPolicy(
    initial_backoff_seconds=0.0, jitter=0.0, budget=32,
    budget_window_seconds=60.0, min_uptime_seconds=0.0,
)


@pytest.fixture(scope="module")
def fault_setup(tiny_corpus, tiny_tokenizer):
    worlds = ["lego", "yugioh"]
    entities = [e for world in worlds for e in tiny_corpus.entities(world)]
    mentions = []
    for world in worlds:
        mentions.extend(
            split_domain(tiny_corpus, world, seed_size=20, dev_size=10).test[:12]
        )
    blink = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
    index = blink.biencoder.build_sharded_index(entities, lazy=False)
    pipeline = EntityLinkingPipeline(
        blink.biencoder, index, blink.crossencoder, k=4, batch_size=8
    )
    pipeline.link(mentions[:8])  # warm encoder caches
    return pipeline, mentions


def make_router(pipeline, replicas=3, **kwargs):
    pool = ReplicaPool.from_pipeline(pipeline, replicas=replicas, max_wait_ms=5.0)
    return Router(pool, seed=13, **kwargs)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestSupervisorSoak:
    def test_repeated_kills_recover_with_zero_lost_requests(self, fault_setup):
        # The PR 8 acceptance scenario: a FaultPlan kills a replica every
        # ~0.3s for the whole run.  Nothing in this test calls restart()
        # or health_check() — the supervisor alone repairs each kill, and
        # every submitted request must complete.
        pipeline, mentions = fault_setup
        duration = 1.5
        plan = FaultPlan(tuple(
            FaultEvent(at=at, action="kill", replica=2)
            for at in (0.3, 0.7, 1.1)
        ))
        workload = Workload(
            PoissonArrivals(rate=60.0, duration=duration),
            UniformMentionSampler({"all": mentions}),
            seed=7, name="supervisor_soak",
        )
        with make_router(pipeline, replicas=3, affinity=False) as router:
            with Supervisor(router, policy=EAGER_REPAIR, interval=0.02):
                harness = LoadHarness(router, tick_interval=0.005)
                result = harness.run(workload, fault_plan=plan)
            healthy = wait_until(lambda: len(router.pool.healthy_slots()) == 3)
        assert healthy, "supervisor failed to restore the pool"

        # Zero lost: every request completed — no errors, no timeouts.
        assert result.errors == 0
        assert result.timeouts == 0
        assert result.completed == result.requests

        # The supervisor observed and repaired each scripted kill.
        assert result.restarts >= 3
        assert result.mttr_seconds and len(result.mttr_seconds) >= 3
        assert max(result.mttr_seconds) < 5.0
        # Replica 2 was dead for slices of the run but the pool held.
        assert result.availability is not None
        assert 0.5 < result.availability <= 1.0

        # The resilience SLO machinery sees the same story.
        report = SLOSpec(
            name="soak", max_error_rate=0.0, max_mttr_seconds=5.0,
            min_availability=0.5,
        ).evaluate(result)
        assert report.passed, [c.metric for c in report.failures()]

    def test_mttr_and_availability_flow_into_payload(self, fault_setup):
        pipeline, mentions = fault_setup
        plan = FaultPlan(tuple(
            FaultEvent(at=at, action="kill", replica=1) for at in (0.2, 0.6)
        ))
        workload = Workload(
            PoissonArrivals(rate=50.0, duration=1.0),
            UniformMentionSampler({"all": mentions}),
            seed=11, name="payload_probe",
        )
        with make_router(pipeline, replicas=3, affinity=False) as router:
            with Supervisor(router, policy=EAGER_REPAIR, interval=0.02):
                result = LoadHarness(router).run(workload, fault_plan=plan)
        payload = result.to_dict()
        assert payload["availability"] == pytest.approx(result.availability)
        assert payload["mttr_seconds"] == [
            pytest.approx(v, abs=1e-6) for v in result.mttr_seconds
        ]
        assert payload["mttr_max_seconds"] == pytest.approx(
            max(result.mttr_seconds), abs=1e-6
        )
        assert payload["restarts"] == result.restarts >= 2


class TestCrashLoopQuarantine:
    def test_unrestartable_slot_is_quarantined(self, fault_setup):
        # Kill the same replica every time it comes back: with
        # min_uptime_seconds large, every death is a crash-loop strike and
        # the slot must end up quarantined instead of restart-looping
        # forever.
        pipeline, _ = fault_setup
        policy = RestartPolicy(
            initial_backoff_seconds=0.0, jitter=0.0, budget=32,
            budget_window_seconds=60.0,
            crash_loop_threshold=2, min_uptime_seconds=60.0,
        )
        with make_router(pipeline, replicas=2, affinity=False) as router:
            with Supervisor(router, policy=policy, interval=0.02) as supervisor:
                for _ in range(3):
                    router.pool.kill(0)
                    # Either the supervisor repairs it (strike) or it
                    # quarantines and the slot stays dead.
                    wait_until(
                        lambda: router.pool.replica(0).state == "healthy"
                        or supervisor.quarantined == (0,),
                        timeout=5.0,
                    )
                    if supervisor.quarantined:
                        break
                assert wait_until(lambda: supervisor.quarantined == (0,), timeout=5.0)
                assert router.stats.quarantined == (0,)
                # Quarantined means *stays* dead: give the supervisor time
                # to (wrongly) change its mind, then check.
                time.sleep(0.2)
                assert router.pool.replica(0).state != "healthy"
                snapshot = router.stats.snapshot()["resilience"]
                assert snapshot["quarantined"] == [0]


class TestBrownoutUnderOverload:
    def test_brownout_engages_sheds_quality_then_restores(self, fault_setup):
        pipeline, mentions = fault_setup
        controller = BrownoutController(BrownoutPolicy(
            enter_depth=6, exit_depth=1,
            enter_sustain_seconds=0.03, exit_sustain_seconds=0.1,
        ))
        with make_router(pipeline, replicas=2, affinity=False) as router:
            for slot in range(2):
                router.pool.replica(slot).set_delay(0.03)  # per-batch drag
            with Supervisor(
                router, policy=EAGER_REPAIR, interval=0.01,
                brownout=controller,
            ):
                futures = [router.submit(m) for m in mentions * 6]
                engaged = wait_until(lambda: router.degraded, timeout=10.0)
                results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
                assert engaged, "queue pressure never engaged brownout"
                degraded = [r for r in results if r.degraded]
                assert degraded, "brownout engaged but nothing was served degraded"
                # Pressure gone: the controller must restore full quality.
                assert wait_until(lambda: not router.degraded, timeout=10.0)
                restored = router.submit(mentions[0]).result(timeout=RESULT_TIMEOUT)
                assert not restored.degraded
            snapshot = router.stats.snapshot()["resilience"]
        assert snapshot["brownout_engagements"] >= 1
        assert snapshot["degraded_seconds"] > 0.0
        assert not snapshot["degraded_active"]


class TestShutdownRaces:
    def test_close_races_inflight_requeue(self, fault_setup):
        # Kill a loaded replica (triggering a burst of requeues) at the
        # same moment the router closes.  Whatever interleaving happens,
        # every future must settle — completed, failed, or cancelled —
        # and close() must return; a hang here is the bug.
        pipeline, mentions = fault_setup
        router = make_router(pipeline, replicas=3, affinity=False)
        victim = router.pool.replica(0)
        victim.freeze()
        futures = [router.submit(m) for m in mentions * 2]
        assert wait_until(lambda: victim.pending > 0, timeout=5.0)

        killer = threading.Thread(target=lambda: router.pool.kill(0), daemon=True)
        closer = threading.Thread(target=router.close, daemon=True)
        killer.start()
        closer.start()
        killer.join(RESULT_TIMEOUT)
        closer.join(RESULT_TIMEOUT)
        assert not closer.is_alive(), "Router.close() hung against the requeue"

        settled = 0
        for future in futures:
            try:
                future.result(timeout=RESULT_TIMEOUT)
                settled += 1
            except Exception:
                settled += 1  # failed or cancelled is still settled
        assert settled == len(futures)

    def test_health_check_races_pool_restart(self, fault_setup):
        # health_check() probes (and may kill) replicas while restart()
        # swaps the same slot's generation.  The invariant: no exception
        # escapes either side and the pool ends fully healthy.
        pipeline, mentions = fault_setup
        errors = []
        with make_router(pipeline, replicas=3, affinity=False) as router:
            stop = threading.Event()

            def prober():
                while not stop.is_set():
                    try:
                        router.health_check()
                    except Exception as error:  # pragma: no cover - the bug
                        errors.append(error)
                        return

            thread = threading.Thread(target=prober, daemon=True)
            thread.start()
            try:
                for _ in range(5):
                    router.restart_replica(1)
                    for mention in mentions[:4]:
                        router.submit(mention).result(timeout=RESULT_TIMEOUT)
            except Exception as error:
                errors.append(error)
            finally:
                stop.set()
                thread.join(5.0)
            assert errors == []
            assert len(router.pool.healthy_slots()) == 3
