"""Router dispatch properties: determinism, affinity, balancing, admission.

These tests pin down the contract the cluster benchmark and the chaos suite
rely on: the same seed and pool size always yield the same dispatch
assignment, world-affinity traffic never leaves its home shard while the
home replica is healthy, and admission control sheds with an *immediate*
:class:`~repro.serving.cluster.RejectedError` — never a timeout.
"""

import pytest

from repro.data import split_domain
from repro.linking import BlinkPipeline
from repro.serving import (
    AdmissionPolicy,
    EntityLinkingPipeline,
    FaultEvent,
    FaultPlan,
    RejectedError,
    ReplicaPool,
    Router,
)
from repro.serving.service import warm_up_index
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)

RESULT_TIMEOUT = 30.0


@pytest.fixture(scope="module")
def cluster_setup(tiny_corpus, tiny_tokenizer):
    worlds = ["lego", "yugioh", "star_trek"]
    entities = [e for world in worlds for e in tiny_corpus.entities(world)]
    mentions = []
    for world in worlds:
        mentions.extend(
            split_domain(tiny_corpus, world, seed_size=20, dev_size=10).test[:8]
        )
    blink = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
    index = blink.biencoder.build_sharded_index(entities, lazy=False)
    pipeline = EntityLinkingPipeline(
        blink.biencoder, index, blink.crossencoder, k=4, batch_size=8
    )
    return pipeline, mentions


def make_router(pipeline, replicas=3, **kwargs):
    pool = ReplicaPool.from_pipeline(pipeline, replicas=replicas, max_wait_ms=5.0)
    return Router(pool, **kwargs)


class TestDispatchDeterminism:
    def test_same_seed_same_replica_count_identical_assignment(self, cluster_setup):
        pipeline, mentions = cluster_setup
        with make_router(pipeline, replicas=3, seed=13, affinity=False) as a, \
                make_router(pipeline, replicas=3, seed=13, affinity=False) as b:
            assert a.assignment_plan(mentions) == b.assignment_plan(mentions)

    def test_different_seed_changes_tiebreak_order(self, cluster_setup):
        # The seeded permutation decides who wins depth ties; with every
        # queue empty the first assignment is purely the tie-break, so two
        # seeds with different permutations must produce different plans.
        pipeline, mentions = cluster_setup
        with make_router(pipeline, replicas=4, seed=0, affinity=False) as a, \
                make_router(pipeline, replicas=4, seed=3, affinity=False) as b:
            plans = a.assignment_plan(mentions), b.assignment_plan(mentions)
        assert plans[0] != plans[1]

    def test_affinity_plan_is_seed_independent(self, cluster_setup):
        # World affinity hashes the domain, so the assignment ignores the
        # balancing seed entirely while every replica is healthy.
        pipeline, mentions = cluster_setup
        with make_router(pipeline, replicas=3, seed=1) as a, \
                make_router(pipeline, replicas=3, seed=99) as b:
            assert a.assignment_plan(mentions) == b.assignment_plan(mentions)

    def test_live_dispatch_matches_plan(self, cluster_setup):
        pipeline, mentions = cluster_setup
        with make_router(pipeline, replicas=3, seed=13, record_dispatch=True) as router:
            plan = router.assignment_plan(mentions)
            futures = [router.submit(m) for m in mentions]
            for future in futures:
                future.result(timeout=RESULT_TIMEOUT)
            log = dict(router.dispatch_log)
        assert [log[m.mention_id] for m in mentions] == plan


class TestWorldAffinity:
    def test_affinity_never_crosses_shards(self, cluster_setup):
        pipeline, mentions = cluster_setup
        with make_router(pipeline, replicas=3, seed=13, record_dispatch=True) as router:
            futures = [router.submit(m) for m in mentions]
            for future in futures:
                future.result(timeout=RESULT_TIMEOUT)
            dispatched = dict(router.dispatch_log)
            homes = {m.mention_id: router.home_slot(m.domain) for m in mentions}
        assert dispatched == homes
        assert router.stats.snapshot()["router"]["affinity_misses"] == 0

    def test_home_slot_is_stable_per_world(self, cluster_setup):
        pipeline, _ = cluster_setup
        with make_router(pipeline, replicas=3) as router:
            first = {w: router.home_slot(w) for w in ("lego", "yugioh", "star_trek")}
            again = {w: router.home_slot(w) for w in ("lego", "yugioh", "star_trek")}
        assert first == again
        assert all(0 <= slot < 3 for slot in first.values())

    def test_balancing_splits_evenly_without_affinity(self, cluster_setup):
        pipeline, mentions = cluster_setup
        with make_router(pipeline, replicas=3, seed=13, affinity=False) as router:
            plan = router.assignment_plan(mentions[:12])
        assert sorted(plan.count(slot) for slot in range(3)) == [4, 4, 4]


class TestAdmissionControl:
    def test_shed_is_immediate_rejected_future(self, cluster_setup):
        pipeline, mentions = cluster_setup
        router = make_router(
            pipeline, replicas=2, admission=AdmissionPolicy(watermark=2)
        )
        try:
            # Freeze both replicas so admitted requests cannot drain.
            for replica in router.pool.replicas:
                replica.freeze()
            admitted = [router.submit(m) for m in mentions[:2]]
            shed = router.submit(mentions[2])
            assert shed.done()  # rejected at submit time, no waiting
            with pytest.raises(RejectedError):
                shed.result(timeout=0)
            assert router.stats.shed_by_class() == {"default": 1}
            for replica in router.pool.replicas:
                replica.unfreeze()
            for future in admitted:
                future.result(timeout=RESULT_TIMEOUT)
        finally:
            router.close()

    def test_per_class_watermarks(self, cluster_setup):
        pipeline, mentions = cluster_setup
        policy = AdmissionPolicy(watermark=8, per_class={"batch": 1})
        router = make_router(pipeline, replicas=2, admission=policy)
        try:
            for replica in router.pool.replicas:
                replica.freeze()
            keep = router.submit(mentions[0], request_class="batch")
            bulk = router.submit(mentions[1], request_class="batch")
            interactive = router.submit(mentions[2])
            with pytest.raises(RejectedError):
                bulk.result(timeout=0)
            assert not interactive.done()  # admitted under the higher limit
            for replica in router.pool.replicas:
                replica.unfreeze()
            keep.result(timeout=RESULT_TIMEOUT)
            interactive.result(timeout=RESULT_TIMEOUT)
        finally:
            router.close()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(watermark=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(watermark=4, per_class={"x": -1})
        assert AdmissionPolicy(watermark=4, per_class={"x": 2}).limit_for("x") == 2
        assert AdmissionPolicy(watermark=4).limit_for("anything") == 4


class TestFaultPlanValidation:
    def test_events_sort_by_time(self):
        plan = FaultPlan((
            FaultEvent(at=2.0, action="kill", replica=1),
            FaultEvent(at=0.5, action="slow", replica=0, value=0.1),
        ))
        assert [event.at for event in plan.events] == [0.5, 2.0]
        extended = plan.then(FaultEvent(at=1.0, action="freeze", replica=0))
        assert [event.at for event in extended.events] == [0.5, 1.0, 2.0]
        assert len(plan) == 2 and len(extended) == 3

    def test_invalid_events_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at=-1.0, action="kill", replica=0)
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, action="explode", replica=0)
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, action="slow", replica=0, value=-0.1)
        with pytest.raises(ValueError):
            FaultPlan.freeze_thaw(freeze_at=1.0, thaw_at=0.5, replica=0)

    def test_fault_outside_pool_rejected(self, cluster_setup):
        pipeline, _ = cluster_setup
        with make_router(pipeline, replicas=2) as router:
            with pytest.raises(ValueError):
                router.apply_fault(FaultEvent(at=0.0, action="kill", replica=5))


class TestRouterServiceSurface:
    def test_results_match_batch_pipeline(self, cluster_setup):
        pipeline, mentions = cluster_setup
        expected = {
            r.mention_id: r.predicted_entity_id for r in pipeline.link(mentions)
        }
        with make_router(pipeline, replicas=3, seed=13) as router:
            futures = [router.submit(m) for m in mentions]
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
        assert {r.mention_id: r.predicted_entity_id for r in results} == expected

    def test_warm_up_validates_worlds(self, cluster_setup):
        pipeline, _ = cluster_setup
        with make_router(pipeline, replicas=2) as router:
            assert set(router.warm_up(["lego"])) == {"lego"}
            with pytest.raises(ValueError):
                router.warm_up(["atlantis"])

    def test_warm_up_index_helper_matches_service_warm_up(self, cluster_setup):
        pipeline, _ = cluster_setup
        warmed = warm_up_index(pipeline.index)
        assert "lego" in warmed and "yugioh" in warmed

    def test_peak_pending_and_reset(self, cluster_setup):
        pipeline, mentions = cluster_setup
        with make_router(pipeline, replicas=2) as router:
            futures = [router.submit(m) for m in mentions[:6]]
            for future in futures:
                future.result(timeout=RESULT_TIMEOUT)
            assert router.peak_pending >= 1
            assert router.pending == 0
            assert router.reset_peak_pending() == 0

    def test_closed_router_rejects_submit(self, cluster_setup):
        pipeline, mentions = cluster_setup
        router = make_router(pipeline, replicas=2)
        router.close()
        assert not router.running
        with pytest.raises(RuntimeError):
            router.submit(mentions[0])
