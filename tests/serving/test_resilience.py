"""Unit tests for the self-healing layer: breaker, restart policy,
brownout hysteresis, supervisor repair loop, and end-to-end deadlines.

Everything here is tier-1: the state machines run on fake clocks, the
supervisor is stepped manually against a scripted router, and the few
live-pipeline tests (deadlines, breaker integration, brownout quality)
use the same tiny-corpus cluster fixture as the router tests.  Scenarios
needing real injected faults and wall-clock soak live in
``test_resilience_faults.py`` under the ``chaos`` marker.
"""

import threading
import time

import pytest

from repro.data import split_domain
from repro.linking import BlinkPipeline
from repro.serving import (
    AdmissionPolicy,
    BreakerOpenError,
    BreakerPolicy,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    DeadlineExpiredError,
    EntityLinkingPipeline,
    OverCapacityError,
    RejectedError,
    ReplicaPool,
    RestartPolicy,
    Router,
    Supervisor,
)
from repro.serving.cluster import DEAD, HEALTHY, ClusterStats, ReplicaHealth
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)

RESULT_TIMEOUT = 30.0


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestBreakerPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"window": 0},
        {"min_volume": 0},
        {"min_volume": 21},  # > window
        {"error_threshold": 0.0},
        {"error_threshold": 1.5},
        {"cooldown_seconds": -1.0},
        {"half_open_max_trials": 0},
        {"half_open_successes": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        policy = BreakerPolicy(
            window=10, min_volume=4, error_threshold=0.5,
            cooldown_seconds=1.0, half_open_max_trials=2,
            half_open_successes=2, **kwargs,
        )
        return CircuitBreaker(policy, clock=clock), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == "closed"
        assert breaker.allows()

    def test_healthy_traffic_never_opens(self):
        breaker, _ = self.make()
        for _ in range(100):
            breaker.record_success()
        assert breaker.state == "closed"

    def test_opens_on_windowed_error_rate(self):
        breaker, _ = self.make()
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()  # 1/3 < 0.5 and volume < 4: still closed
        assert breaker.state == "closed"
        breaker.record_failure()  # 2/4 >= 0.5 at min volume: open
        assert breaker.state == "open"
        assert not breaker.allows()

    def test_below_min_volume_never_opens(self):
        breaker, _ = self.make()
        for _ in range(3):  # 3 straight failures but volume < 4
            breaker.record_failure()
        assert breaker.state == "closed"

    def test_cooldown_then_half_open_probe_budget(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        assert not breaker.allows()
        clock.advance(1.01)
        # First allows() past the cooldown flips to half-open; only
        # half_open_max_trials probes are admitted concurrently.
        assert breaker.allows()
        assert breaker.state == "half_open"
        breaker.on_dispatch()
        assert breaker.allows()
        breaker.on_dispatch()
        assert not breaker.allows()

    def test_probe_successes_close(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.01)
        for _ in range(2):
            assert breaker.allows()
            breaker.on_dispatch()
            breaker.record_success()
        assert breaker.state == "closed"
        # A fresh window: the old failures must not linger.
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_probe_failure_reopens(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allows()
        breaker.on_dispatch()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows()  # cooldown restarted at the reopen
        clock.advance(1.01)
        assert breaker.allows()

    def test_straggler_outcomes_ignored_while_open(self):
        breaker, _ = self.make()
        for _ in range(4):
            breaker.record_failure()
        breaker.record_success()  # in-flight from before the trip
        assert breaker.state == "open"

    def test_reset_closes(self):
        breaker, _ = self.make()
        for _ in range(4):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allows()


# ----------------------------------------------------------------------
# Restart policy
# ----------------------------------------------------------------------
class TestRestartPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"initial_backoff_seconds": -0.1},
        {"max_backoff_seconds": 0.01},  # < initial
        {"multiplier": 0.5},
        {"jitter": 1.5},
        {"budget": 0},
        {"budget_window_seconds": 0.0},
        {"crash_loop_threshold": 0},
        {"min_uptime_seconds": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RestartPolicy(**kwargs)

    def test_backoff_zero_strikes_is_immediate(self):
        import random
        policy = RestartPolicy()
        assert policy.backoff_for(0, random.Random(0)) == 0.0

    def test_backoff_grows_and_caps(self):
        import random
        policy = RestartPolicy(
            initial_backoff_seconds=0.1, max_backoff_seconds=1.0,
            multiplier=2.0, jitter=0.0,
        )
        rng = random.Random(0)
        delays = [policy.backoff_for(s, rng) for s in (1, 2, 3, 4, 5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.0])

    def test_jitter_is_seed_deterministic(self):
        import random
        policy = RestartPolicy(jitter=0.5)
        a = [policy.backoff_for(s, random.Random(7)) for s in (1, 2, 3)]
        b = [policy.backoff_for(s, random.Random(7)) for s in (1, 2, 3)]
        assert a == b
        bare = [policy.backoff_for(s, random.Random(7)) for s in (1,)]
        assert bare[0] >= policy.initial_backoff_seconds


# ----------------------------------------------------------------------
# Brownout hysteresis
# ----------------------------------------------------------------------
class TestBrownoutController:
    def make(self):
        policy = BrownoutPolicy(
            enter_depth=10, exit_depth=2,
            enter_sustain_seconds=1.0, exit_sustain_seconds=2.0,
        )
        return BrownoutController(policy)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(enter_depth=0)
        with pytest.raises(ValueError):
            BrownoutPolicy(enter_depth=5, exit_depth=5)
        with pytest.raises(ValueError):
            BrownoutPolicy(enter_sustain_seconds=-1.0)

    def test_brief_spike_does_not_engage(self):
        controller = self.make()
        assert controller.observe(50, now=0.0) is None
        assert controller.observe(0, now=0.5) is None   # pressure cleared
        assert controller.observe(50, now=1.5) is None  # sustain restarted
        assert not controller.engaged

    def test_sustained_pressure_engages_once(self):
        controller = self.make()
        assert controller.observe(20, now=0.0) is None
        assert controller.observe(20, now=0.5) is None
        assert controller.observe(20, now=1.1) is True
        assert controller.engaged
        # Already engaged: continued pressure emits no duplicate flips.
        assert controller.observe(30, now=2.0) is None

    def test_disengages_after_sustained_calm(self):
        controller = self.make()
        controller.observe(20, now=0.0)
        assert controller.observe(20, now=1.1) is True
        assert controller.observe(1, now=2.0) is None    # calm begins
        assert controller.observe(5, now=3.0) is None    # mid-band: hold
        assert controller.observe(1, now=4.0) is None    # calm restarted
        assert controller.observe(1, now=6.1) is False
        assert not controller.engaged

    def test_mid_band_depth_keeps_current_mode(self):
        controller = self.make()
        controller.observe(20, now=0.0)
        assert controller.observe(20, now=1.1) is True
        # Depth 5 is above exit (2) but below enter (10): stay engaged
        # forever — that's the hysteresis band.
        for tick in range(10):
            assert controller.observe(5, now=2.0 + tick) is None
        assert controller.engaged


# ----------------------------------------------------------------------
# Supervisor against a scripted router
# ----------------------------------------------------------------------
class _EmptyPool:
    replicas = ()


class FakeRouter:
    """Just enough router surface for Supervisor: scripted health probes,
    restart bookkeeping, a stats sink, and a settable pending depth."""

    def __init__(self, slots=3):
        self.states = [HEALTHY] * slots
        self.stats = ClusterStats(pool=_EmptyPool())
        self.pending = 0
        self.restarted = []
        self.degraded_calls = []
        self.fail_restarts = False

    def health_check(self):
        return [
            ReplicaHealth(
                replica_id=slot, name=f"fake-{slot}", state=state,
                alive=state == HEALTHY, pending=0, processed=0,
                frozen=False, delay=0.0,
            )
            for slot, state in enumerate(self.states)
        ]

    def restart_replica(self, slot, timeout=None):
        if self.fail_restarts:
            raise RuntimeError("restart refused")
        self.restarted.append(slot)
        self.states[slot] = HEALTHY

    def set_degraded(self, degraded):
        self.degraded_calls.append(bool(degraded))


def make_supervisor(router, clock, **kwargs):
    # A huge probe interval parks the background thread; the tests step
    # the repair loop deterministically through tick() on the fake clock.
    kwargs.setdefault("interval", 3600.0)
    kwargs.setdefault("clock", clock)
    return Supervisor(router, **kwargs)


class TestSupervisor:
    def test_restarts_dead_slot_and_records_mttr(self):
        router, clock = FakeRouter(), FakeClock()
        policy = RestartPolicy(initial_backoff_seconds=0.0, jitter=0.0)
        with make_supervisor(router, clock, policy=policy) as supervisor:
            router.states[1] = DEAD
            clock.advance(1.0)
            supervisor.tick()
        assert router.restarted == [1]
        assert router.stats.restarts == 1
        assert len(router.stats.mttr_seconds) == 1
        assert router.stats.mttr_seconds[0] >= 0.0
        assert router.states[1] == HEALTHY

    def test_healthy_pool_is_left_alone(self):
        router, clock = FakeRouter(), FakeClock()
        with make_supervisor(router, clock) as supervisor:
            for _ in range(5):
                clock.advance(1.0)
                supervisor.tick()
        assert router.restarted == []
        assert router.stats.restarts == 0

    def test_crash_loop_quarantines_after_threshold(self):
        router, clock = FakeRouter(), FakeClock()
        policy = RestartPolicy(
            initial_backoff_seconds=0.0, jitter=0.0,
            crash_loop_threshold=2, min_uptime_seconds=10.0,
        )
        with make_supervisor(router, clock, policy=policy) as supervisor:
            for _ in range(4):
                # The replica dies again immediately after every repair —
                # well inside min_uptime, so each death is a strike.
                router.states[0] = DEAD
                clock.advance(0.1)
                supervisor.tick()
            assert supervisor.quarantined == (0,)
            assert router.stats.quarantined == (0,)
            # Quarantined: no further repair attempts.
            restarts_so_far = list(router.restarted)
            router.states[0] = DEAD
            clock.advance(0.1)
            supervisor.tick()
            assert router.restarted == restarts_so_far

    def test_quarantine_reasserted_after_stats_reset(self):
        router, clock = FakeRouter(), FakeClock()
        policy = RestartPolicy(
            initial_backoff_seconds=0.0, jitter=0.0,
            crash_loop_threshold=1, min_uptime_seconds=10.0,
        )
        with make_supervisor(router, clock, policy=policy) as supervisor:
            router.states[2] = DEAD
            clock.advance(0.1)
            supervisor.tick()  # repaired once (no prior restart: 0 strikes)
            router.states[2] = DEAD
            clock.advance(0.1)
            supervisor.tick()  # died within min_uptime: quarantined
            assert router.stats.quarantined == (2,)
            router.stats.reset()
            assert router.stats.quarantined == ()
            clock.advance(0.1)
            supervisor.tick()
            assert router.stats.quarantined == (2,)

    def test_surviving_min_uptime_clears_strikes(self):
        router, clock = FakeRouter(), FakeClock()
        policy = RestartPolicy(
            initial_backoff_seconds=0.0, jitter=0.0,
            crash_loop_threshold=2, min_uptime_seconds=1.0,
        )
        with make_supervisor(router, clock, policy=policy) as supervisor:
            for _ in range(6):
                # Each generation lives well past min_uptime before dying,
                # so strikes reset every cycle and no quarantine happens.
                router.states[0] = DEAD
                clock.advance(5.0)
                supervisor.tick()
            assert supervisor.quarantined == ()
            assert len(router.restarted) == 6

    def test_restart_budget_bounds_repairs_per_window(self):
        router, clock = FakeRouter(), FakeClock()
        policy = RestartPolicy(
            initial_backoff_seconds=0.0, jitter=0.0,
            budget=2, budget_window_seconds=100.0,
            min_uptime_seconds=0.0,  # deaths are never crash-loop strikes
        )
        with make_supervisor(router, clock, policy=policy) as supervisor:
            for _ in range(5):
                router.states[0] = DEAD
                clock.advance(0.5)
                supervisor.tick()
            assert len(router.restarted) == 2  # budget exhausted
            clock.advance(200.0)  # window rolls over
            router.states[0] = DEAD
            supervisor.tick()
            assert len(router.restarted) == 3

    def test_failed_restart_counts_as_strike(self):
        router, clock = FakeRouter(), FakeClock()
        router.fail_restarts = True
        policy = RestartPolicy(
            initial_backoff_seconds=0.0, jitter=0.0, crash_loop_threshold=2,
        )
        with make_supervisor(router, clock, policy=policy) as supervisor:
            for _ in range(4):
                router.states[0] = DEAD
                clock.advance(0.1)
                supervisor.tick()
            assert supervisor.quarantined == (0,)

    def test_drives_brownout_controller(self):
        router, clock = FakeRouter(), FakeClock()
        controller = BrownoutController(BrownoutPolicy(
            enter_depth=10, exit_depth=2,
            enter_sustain_seconds=0.5, exit_sustain_seconds=0.5,
        ))
        with make_supervisor(router, clock, brownout=controller) as supervisor:
            router.pending = 50
            supervisor.tick()
            clock.advance(1.0)
            supervisor.tick()
            assert router.degraded_calls == [True]
            router.pending = 0
            supervisor.tick()
            clock.advance(1.0)
            supervisor.tick()
            assert router.degraded_calls == [True, False]

    def test_background_thread_stops_on_close(self):
        router, clock = FakeRouter(), FakeClock()
        supervisor = Supervisor(router, interval=0.01, clock=clock)
        assert supervisor.running
        supervisor.close()
        assert not supervisor.running

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            Supervisor(FakeRouter(), interval=0.0)


# ----------------------------------------------------------------------
# Live-pipeline integration: deadlines, breakers, brownout quality
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def resilience_setup(tiny_corpus, tiny_tokenizer):
    worlds = ["lego", "yugioh"]
    entities = [e for world in worlds for e in tiny_corpus.entities(world)]
    mentions = []
    for world in worlds:
        mentions.extend(
            split_domain(tiny_corpus, world, seed_size=20, dev_size=10).test[:8]
        )
    blink = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
    index = blink.biencoder.build_sharded_index(entities, lazy=False)
    pipeline = EntityLinkingPipeline(
        blink.biencoder, index, blink.crossencoder, k=4, batch_size=8
    )
    pipeline.link(mentions[:8])  # warm encoder caches
    return pipeline, mentions


def make_router(pipeline, replicas=2, **kwargs):
    pool = ReplicaPool.from_pipeline(pipeline, replicas=replicas, max_wait_ms=5.0)
    return Router(pool, seed=13, **kwargs)


class TestDeadlines:
    def test_negative_deadline_rejected(self, resilience_setup):
        pipeline, mentions = resilience_setup
        with make_router(pipeline) as router:
            with pytest.raises(ValueError):
                router.submit(mentions[0], deadline=-1.0)

    def test_zero_deadline_expires_before_dispatch(self, resilience_setup):
        pipeline, mentions = resilience_setup
        with make_router(pipeline) as router:
            future = router.submit(mentions[0], deadline=0.0)
            with pytest.raises(DeadlineExpiredError):
                future.result(timeout=RESULT_TIMEOUT)
            assert router.stats.snapshot()["router"]["expired"] == 1

    def test_expiry_inside_replica_queue(self, resilience_setup):
        # Freeze both replicas so queued requests sit past their deadline;
        # on thaw they must be dropped without consuming a batch slot.
        pipeline, mentions = resilience_setup
        with make_router(pipeline, replicas=2) as router:
            for slot in range(2):
                router.pool.replica(slot).freeze()
            doomed = [router.submit(m, deadline=0.05) for m in mentions[:4]]
            healthy = [router.submit(m) for m in mentions[4:8]]
            time.sleep(0.15)  # let every deadline lapse while frozen
            for slot in range(2):
                router.pool.replica(slot).unfreeze()
            for future in doomed:
                with pytest.raises(DeadlineExpiredError):
                    future.result(timeout=RESULT_TIMEOUT)
            for future in healthy:
                future.result(timeout=RESULT_TIMEOUT)
        assert router.stats.snapshot()["router"]["expired"] == 4

    def test_deadline_error_is_rejected_error(self):
        assert issubclass(DeadlineExpiredError, RejectedError)
        assert issubclass(OverCapacityError, RejectedError)
        assert issubclass(BreakerOpenError, RejectedError)

    def test_shed_raises_over_capacity(self, resilience_setup):
        pipeline, mentions = resilience_setup
        with make_router(
            pipeline, replicas=2, admission=AdmissionPolicy(watermark=1),
        ) as router:
            for slot in range(2):
                router.pool.replica(slot).freeze()
            admitted = router.submit(mentions[0])
            shed = router.submit(mentions[1])
            with pytest.raises(OverCapacityError):
                shed.result(timeout=0)
            for slot in range(2):
                router.pool.replica(slot).unfreeze()
            admitted.result(timeout=RESULT_TIMEOUT)


class TestBreakerIntegration:
    def test_failing_replica_opens_breaker_and_affinity_spills(self, resilience_setup):
        # Affinity pins every lego mention on its home slot, so the
        # injected pipeline failure deterministically feeds that slot's
        # breaker; once it opens, affinity must spill to the healthy slot
        # (counted as misses) instead of hammering the flapping replica.
        pipeline, mentions = resilience_setup
        policy = BreakerPolicy(
            window=4, min_volume=2, error_threshold=0.5,
            cooldown_seconds=60.0,
        )
        with make_router(pipeline, replicas=2, breaker_policy=policy) as router:
            lego = [m for m in mentions if m.domain == "lego"]
            home = router.home_slot("lego")
            router.pool.replica(home).pipeline.link = _always_boom
            failures = 0
            for mention in lego * 4:
                try:
                    router.submit(mention).result(timeout=RESULT_TIMEOUT)
                except RuntimeError:
                    failures += 1
                if router.breaker_states()[home] == "open":
                    break
            assert failures >= 2
            assert router.breaker_states()[home] == "open"
            misses_at_open = router.stats.snapshot()["router"]["affinity_misses"]
            # With the breaker open, lego traffic spills and succeeds.
            for mention in lego[:4]:
                router.submit(mention).result(timeout=RESULT_TIMEOUT)
            snapshot = router.stats.snapshot()["router"]
        assert snapshot["affinity_misses"] >= misses_at_open + 4
        assert snapshot["breaker_rejects"] == 0  # a healthy slot remained

    def test_all_breakers_open_rejects_with_breaker_error(self, resilience_setup):
        pipeline, mentions = resilience_setup
        policy = BreakerPolicy(
            window=4, min_volume=2, error_threshold=0.5,
            cooldown_seconds=60.0,
        )
        with make_router(
            pipeline, replicas=1, breaker_policy=policy,
        ) as router:
            router.pool.replica(0).pipeline.link = _always_boom
            for mention in mentions:
                try:
                    router.submit(mention).result(timeout=RESULT_TIMEOUT)
                except RuntimeError:
                    pass
                if router.breaker_states()[0] == "open":
                    break
            assert router.breaker_states()[0] == "open"
            with pytest.raises(BreakerOpenError):
                router.submit(mentions[0]).result(timeout=RESULT_TIMEOUT)
        assert router.stats.snapshot()["router"]["breaker_rejects"] >= 1

    def test_breakers_disabled_runs_bare(self, resilience_setup):
        pipeline, mentions = resilience_setup
        with make_router(pipeline, replicas=2, breakers=False) as router:
            assert router.breaker_states() == {}
            router.submit(mentions[0]).result(timeout=RESULT_TIMEOUT)

    def test_breaker_policy_without_breakers_rejected(self, resilience_setup):
        pipeline, _ = resilience_setup
        pool = ReplicaPool.from_pipeline(pipeline, replicas=2, max_wait_ms=5.0)
        with pytest.raises(ValueError):
            Router(pool, breakers=False, breaker_policy=BreakerPolicy())
        pool.close()

    def test_restart_replica_resets_breaker(self, resilience_setup):
        pipeline, mentions = resilience_setup
        policy = BreakerPolicy(
            window=4, min_volume=2, error_threshold=0.5,
            cooldown_seconds=60.0,
        )
        with make_router(pipeline, replicas=2, breaker_policy=policy) as router:
            lego = [m for m in mentions if m.domain == "lego"]
            home = router.home_slot("lego")
            router.pool.replica(home).pipeline.link = _always_boom
            for mention in lego * 4:
                try:
                    router.submit(mention).result(timeout=RESULT_TIMEOUT)
                except RuntimeError:
                    pass
                if router.breaker_states()[home] == "open":
                    break
            assert router.breaker_states()[home] == "open"
            router.restart_replica(home)  # fresh clone, healthy link again
            assert router.breaker_states()[home] == "closed"
            for mention in lego[:4]:
                router.submit(mention).result(timeout=RESULT_TIMEOUT)


def _always_boom(mentions, **kwargs):
    raise RuntimeError("injected pipeline failure")


class TestBrownoutQuality:
    def test_pipeline_degraded_mode_flags_results(self, resilience_setup):
        pipeline, mentions = resilience_setup
        full = pipeline.link(mentions[:4])
        assert all(not r.degraded for r in full)
        pipeline.set_degraded(True)
        try:
            degraded = pipeline.link(mentions[:4])
        finally:
            pipeline.set_degraded(False)
        assert all(r.degraded for r in degraded)
        assert all(r.predicted_entity_id is not None for r in degraded)
        restored = pipeline.link(mentions[:4])
        assert all(not r.degraded for r in restored)

    def test_degraded_k_validated(self, resilience_setup):
        pipeline, _ = resilience_setup
        with pytest.raises(ValueError):
            EntityLinkingPipeline(
                pipeline.biencoder, pipeline.index, pipeline.crossencoder,
                k=4, degraded_k=0,
            )

    def test_router_set_degraded_applies_cluster_wide(self, resilience_setup):
        pipeline, mentions = resilience_setup
        with make_router(pipeline, replicas=2, affinity=False) as router:
            router.set_degraded(True)
            assert router.degraded
            results = [
                router.submit(m).result(timeout=RESULT_TIMEOUT)
                for m in mentions[:8]
            ]
            assert all(r.degraded for r in results)
            router.set_degraded(False)
            results = [
                router.submit(m).result(timeout=RESULT_TIMEOUT)
                for m in mentions[:8]
            ]
            assert all(not r.degraded for r in results)
        snapshot = router.stats.snapshot()["resilience"]
        assert snapshot["brownout_engagements"] == 1
        assert not snapshot["degraded_active"]
        assert snapshot["degraded_seconds"] > 0.0

    def test_restarted_replica_inherits_degraded_mode(self, resilience_setup):
        pipeline, mentions = resilience_setup
        with make_router(pipeline, replicas=2, affinity=False) as router:
            router.set_degraded(True)
            router.restart_replica(0)
            results = [
                router.submit(m).result(timeout=RESULT_TIMEOUT)
                for m in mentions[:8]
            ]
            assert all(r.degraded for r in results)
            router.set_degraded(False)
