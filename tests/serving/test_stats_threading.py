"""Concurrent-access tests for PipelineStats.

The load harness resets the stats between scenarios from its own thread
while the service scheduler thread keeps recording stage times and request
latencies — every counter mutation must be atomic against a concurrent
``reset()``.  Without the internal lock these tests trip "deque mutated
during iteration" in the percentile reads or lose stage-seconds updates.
"""

import threading

import pytest

from repro.serving.pipeline import PipelineStats


def hammer(threads):
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)
        return run

    workers = [threading.Thread(target=wrap(fn)) for fn in threads]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=30.0)
    assert not errors, errors


class TestPipelineStatsThreading:
    def test_record_latency_races_summary_and_reset(self):
        stats = PipelineStats()
        rounds = 3000

        def writer():
            for i in range(rounds):
                stats.record_latency(i * 1e-6)

        def reader():
            for _ in range(rounds // 10):
                summary = stats.latency_summary()
                assert summary["count"] >= 0
                stats.latency_percentile(99.0)

        def resetter():
            for _ in range(rounds // 30):
                stats.reset()

        hammer([writer, writer, reader, reader, resetter])
        # Still usable afterwards and internally consistent.
        stats.reset()
        stats.record_latency(0.5)
        assert stats.latency_summary()["count"] == 1

    def test_stage_recording_races_reset_and_throughput(self):
        stats = PipelineStats()
        rounds = 3000

        def writer():
            for _ in range(rounds):
                stats.record("embed", 1e-6)
                stats.record_batch(4)

        def reader():
            for _ in range(rounds // 10):
                stats.throughput()
                _ = stats.total_seconds

        def resetter():
            for _ in range(rounds // 30):
                stats.reset()

        hammer([writer, writer, reader, resetter])
        stats.reset()
        stats.record("embed", 2.0)
        stats.record_batch(10)
        assert stats.total_seconds == pytest.approx(2.0)
        assert stats.throughput() == pytest.approx(5.0)
        assert stats.mentions == 10 and stats.batches == 1

    def test_latency_window_reads_are_atomic_snapshots(self):
        # Percentile reads iterate the rolling deque; without the lock a
        # concurrent append raises "deque mutated during iteration".  Keep a
        # writer appending flat out while a reader takes many snapshots.
        stats = PipelineStats()
        stop = threading.Event()

        def writer():
            value = 0
            while not stop.is_set():
                value += 1
                stats.record_latency(value * 1e-6)

        worker = threading.Thread(target=writer)
        worker.start()
        try:
            for _ in range(500):
                summary = stats.latency_summary()
                # Any snapshot is internally ordered even mid-append.
                assert summary["p50"] <= summary["p90"] <= summary["p99"]
        finally:
            stop.set()
            worker.join(timeout=30.0)
        assert stats.latency_summary()["count"] > 0
