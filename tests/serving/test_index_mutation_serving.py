"""Online KB mutation under serving: live add/update/remove + compaction.

The acceptance story of the approximate index layer: entities added to a
*live* IVF-backed index are linkable immediately (pending-tail hits),
removals disappear from candidates, and an explicit ``compact()`` racing a
stream of in-flight requests loses none of them — searches read an
immutable state snapshot, compaction swaps it atomically.
"""

import threading

import numpy as np
import pytest

from repro.index import IVFBackend
from repro.kb import Entity
from repro.linking import BlinkPipeline
from repro.serving import EntityLinkingPipeline, LinkingService
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)

RESULT_TIMEOUT = 30.0


@pytest.fixture(scope="module")
def serving_setup(tiny_corpus, tiny_tokenizer):
    blink = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
    entities = tiny_corpus.entities("lego") + tiny_corpus.entities("yugioh")
    mentions = tiny_corpus.mentions("lego")[:24]
    return blink, entities, mentions


def build_live_index(blink, entities):
    return blink.biencoder.build_sharded_index(
        entities, lazy=False, backend=IVFBackend(nprobe=4)
    )


class TestMutationUnderServing:
    def test_pending_tail_hit_linkable_before_compact(self, serving_setup):
        blink, entities, _ = serving_setup
        index = build_live_index(blink, entities)
        newcomer = Entity(
            entity_id="lego:brand-new",
            title="Brand New Set",
            description="a set introduced after the index was built",
            domain="lego",
        )
        index.add_entities([newcomer])  # embeds through the live embed_fn
        assert index.shard("lego").num_pending == 1

        # The pending-tail row must be retrievable right now, pre-compact.
        query = index.vector("lego:brand-new")[None, :]
        assert index.search(query, k=1, worlds=["lego"])[0].entity_ids == [
            "lego:brand-new"
        ]

        index.compact()
        assert index.shard("lego").num_pending == 0
        assert index.search(query, k=1, worlds=["lego"])[0].entity_ids == [
            "lego:brand-new"
        ]

    def test_removed_entity_leaves_candidates(self, serving_setup):
        blink, entities, _ = serving_setup
        index = build_live_index(blink, entities)
        victim = entities[0].entity_id
        query = index.vector(victim)[None, :]
        assert victim in index.search(query, k=8)[0].entity_ids
        index.remove_entities([victim])
        assert victim not in index.search(query, k=8)[0].entity_ids

    def test_update_entity_moves_in_vector_space(self, serving_setup):
        blink, entities, _ = serving_setup
        index = build_live_index(blink, entities)
        target = entities[1]
        moved = np.full((1, ENC.model_dim), 11.0)
        index.update_entities([target], moved)
        assert index.search(moved, k=1)[0].entity_ids == [target.entity_id]

    def test_compaction_mid_load_loses_no_requests(self, serving_setup):
        """Futures submitted around a racing compact() all complete."""
        blink, entities, mentions = serving_setup
        index = build_live_index(blink, entities)
        pipeline = EntityLinkingPipeline(
            blink.biencoder, index, blink.crossencoder, k=4, batch_size=8
        )
        expected = {m.mention_id for m in mentions}
        newcomers = [
            Entity(
                entity_id=f"lego:live-{j}",
                title=f"live addition {j}",
                description="added while traffic is flowing",
                domain="lego",
            )
            for j in range(6)
        ]

        stop = threading.Event()
        mutation_errors = []

        def churn():
            # add -> compact -> remove, repeatedly, racing the link stream.
            try:
                index.add_entities(newcomers)
                while not stop.is_set():
                    index.compact()
                index.remove_entities([e.entity_id for e in newcomers])
                index.compact()
            except Exception as error:  # pragma: no cover - fails the test
                mutation_errors.append(error)

        with LinkingService(pipeline, max_batch_size=4, max_wait_ms=5.0) as service:
            mutator = threading.Thread(target=churn)
            mutator.start()
            try:
                futures = [service.submit(m) for m in mentions]
                results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            finally:
                stop.set()
                mutator.join(timeout=RESULT_TIMEOUT)

        assert not mutation_errors
        assert {r.mention_id for r in results} == expected
        # Every request produced a real linking result with candidates.
        assert all(r.candidate_ids for r in results)
        # The shard really did compact at least once mid-stream ...
        assert index.shard("lego").generation >= 1
        # ... and the temporary additions are gone again.
        assert "lego:live-0" not in index
