"""Tests for the dynamic-batching serving frontend (repro.serving.service)."""

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.data import split_domain
from repro.linking import BlinkPipeline
from repro.serving import EntityLinkingPipeline, LinkingResult, LinkingService
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)

#: Generous wall-clock bound for waiting on futures; the tests only rely on
#: *which* condition triggered the flush, never on tight timing.
RESULT_TIMEOUT = 30.0


@pytest.fixture(scope="module")
def service_setup(tiny_corpus, tiny_tokenizer):
    split = split_domain(tiny_corpus, "lego", seed_size=20, dev_size=10)
    entities = tiny_corpus.entities("lego") + tiny_corpus.entities("yugioh")
    blink = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
    return blink, entities, split.test[:12]


def make_pipeline(blink, entities, **kwargs):
    index = blink.biencoder.build_sharded_index(entities)
    return EntityLinkingPipeline(
        blink.biencoder, index, blink.crossencoder, k=4, batch_size=8, **kwargs
    )


class TestLinkingService:
    def test_max_batch_flush(self, service_setup):
        # With an effectively infinite wait, completion proves the flush was
        # triggered by the queue reaching max_batch_size.
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)
        with LinkingService(pipeline, max_batch_size=4, max_wait_ms=60_000.0) as service:
            futures = [service.submit(mention) for mention in mentions[:4]]
            results = [future.result(timeout=RESULT_TIMEOUT) for future in futures]
        assert [r.mention_id for r in results] == [m.mention_id for m in mentions[:4]]
        assert pipeline.stats.mentions == 4
        assert pipeline.stats.batches == 1

    def test_max_wait_flush(self, service_setup):
        # Fewer requests than max_batch_size: only the max_wait_ms timer can
        # flush, so completion proves the latency bound works.
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)
        with LinkingService(pipeline, max_batch_size=64, max_wait_ms=20.0) as service:
            futures = [service.submit(mention) for mention in mentions[:3]]
            results = [future.result(timeout=RESULT_TIMEOUT) for future in futures]
        assert all(isinstance(result, LinkingResult) for result in results)
        assert pipeline.stats.mentions == 3

    def test_results_match_batch_pipeline(self, service_setup):
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)
        expected = pipeline.link(mentions)
        with LinkingService(pipeline, max_batch_size=5, max_wait_ms=10.0) as service:
            futures = [service.submit(mention) for mention in mentions]
            results = [future.result(timeout=RESULT_TIMEOUT) for future in futures]
        for got, want in zip(results, expected):
            assert got.mention_id == want.mention_id
            assert got.candidate_ids == want.candidate_ids
            assert got.predicted_entity_id == want.predicted_entity_id

    def test_ordering_under_concurrent_submitters(self, service_setup):
        # Several threads trickling in requests: every future must resolve to
        # the result of exactly the mention that was submitted with it.
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)
        collected = {}
        errors = []

        def submitter(worker_id, service, batch):
            try:
                futures = [(m, service.submit(m)) for m in batch]
                collected[worker_id] = [
                    (m.mention_id, f.result(timeout=RESULT_TIMEOUT).mention_id)
                    for m, f in futures
                ]
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        with LinkingService(pipeline, max_batch_size=4, max_wait_ms=5.0) as service:
            threads = [
                threading.Thread(target=submitter, args=(i, service, mentions[i::3]))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=RESULT_TIMEOUT)
        assert not errors
        assert len(collected) == 3
        for pairs in collected.values():
            for submitted_id, result_id in pairs:
                assert submitted_id == result_id

    def test_close_drains_pending_requests(self, service_setup):
        # Requests queued behind an infinite wait are still completed by the
        # graceful shutdown drain.
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)
        service = LinkingService(pipeline, max_batch_size=64, max_wait_ms=60_000.0)
        futures = [service.submit(mention) for mention in mentions[:5]]
        service.close(timeout=RESULT_TIMEOUT)
        assert not service.running
        for mention, future in zip(mentions[:5], futures):
            assert future.result(timeout=0).mention_id == mention.mention_id

    def test_submit_after_close_raises(self, service_setup):
        blink, entities, mentions = service_setup
        service = LinkingService(make_pipeline(blink, entities))
        service.close(timeout=RESULT_TIMEOUT)
        with pytest.raises(RuntimeError):
            service.submit(mentions[0])
        with pytest.raises(RuntimeError):
            service.start()

    def test_submit_before_start_raises(self, service_setup):
        blink, entities, mentions = service_setup
        service = LinkingService(make_pipeline(blink, entities), start=False)
        with pytest.raises(RuntimeError):
            service.submit(mentions[0])
        service.close()

    def test_link_blocking_wrapper(self, service_setup):
        blink, entities, mentions = service_setup
        with LinkingService(make_pipeline(blink, entities), max_wait_ms=2.0) as service:
            result = service.link(mentions[0], timeout=RESULT_TIMEOUT)
        assert result.mention_id == mentions[0].mention_id

    def test_pipeline_errors_propagate_to_futures(self, service_setup, monkeypatch):
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)

        def boom(mentions):
            raise RuntimeError("index unavailable")

        monkeypatch.setattr(pipeline, "link", boom)
        with LinkingService(pipeline, max_batch_size=2, max_wait_ms=5.0) as service:
            future = service.submit(mentions[0])
            with pytest.raises(RuntimeError, match="index unavailable"):
                future.result(timeout=RESULT_TIMEOUT)

    def test_latency_percentiles_recorded(self, service_setup):
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)
        with LinkingService(pipeline, max_batch_size=4, max_wait_ms=5.0) as service:
            futures = [service.submit(mention) for mention in mentions[:8]]
            for future in futures:
                future.result(timeout=RESULT_TIMEOUT)
        summary = pipeline.stats.latency_summary()
        assert summary["count"] == 8
        assert 0 < summary["p50"] <= summary["p90"] <= summary["p99"]
        assert pipeline.stats.latency_percentile(100.0) >= summary["p99"]
        with pytest.raises(ValueError):
            pipeline.stats.latency_percentile(101.0)
        pipeline.stats.reset()
        assert pipeline.stats.latency_summary()["count"] == 0

    def test_warm_up_materialises_selected_shards(self, service_setup):
        blink, entities, _ = service_setup
        pipeline = make_pipeline(blink, entities)
        with LinkingService(pipeline) as service:
            index = pipeline.index
            assert not index.is_materialized("lego")
            assert service.warm_up(["lego"]) == ["lego"]
            assert index.is_materialized("lego")
            assert not index.is_materialized("yugioh")
            assert service.warm_up() == index.worlds()
            assert all(index.is_materialized(world) for world in index.worlds())

    def test_link_timeout_cancels_queued_request(self, service_setup):
        # A timed-out link() must cancel its queued request so it stops
        # consuming a batch slot; the flush skips it via
        # set_running_or_notify_cancel and only live requests are linked.
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)
        pipeline.stats.reset()
        # max_wait far beyond the timeout: the request is guaranteed to
        # still be queued (not RUNNING) when the timeout fires.
        with LinkingService(pipeline, max_batch_size=64, max_wait_ms=60_000.0) as service:
            with pytest.raises(FutureTimeoutError):
                service.link(mentions[0], timeout=0.05)
            assert service.pending == 1  # cancelled but still queued
            live = [service.submit(mention) for mention in mentions[1:4]]
            # close() drains the queue: the cancelled request is skipped,
            # the live ones complete.
            service.close(timeout=RESULT_TIMEOUT)
        for mention, future in zip(mentions[1:4], live):
            assert future.result(timeout=0).mention_id == mention.mention_id
        assert pipeline.stats.mentions == 3

    def test_flush_skips_cancelled_queued_requests(self, service_setup):
        # Directly exercise the set_running_or_notify_cancel path: cancel a
        # queued future before any flush can run, then let the drain flush.
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)
        pipeline.stats.reset()
        with LinkingService(pipeline, max_batch_size=64, max_wait_ms=60_000.0) as service:
            doomed = service.submit(mentions[0])
            survivor = service.submit(mentions[1])
            assert doomed.cancel()
            service.close(timeout=RESULT_TIMEOUT)
        assert doomed.cancelled()
        assert survivor.result(timeout=0).mention_id == mentions[1].mention_id
        assert pipeline.stats.mentions == 1
        assert pipeline.stats.latency_summary()["count"] == 1

    def test_warm_up_unknown_world_raises_value_error(self, service_setup):
        blink, entities, _ = service_setup
        pipeline = make_pipeline(blink, entities)
        with LinkingService(pipeline) as service:
            with pytest.raises(ValueError, match="unknown world") as excinfo:
                service.warm_up(["lego", "atlantis"])
            # The message lists the known worlds and nothing was built.
            assert "lego" in str(excinfo.value)
            assert not pipeline.index.is_materialized("lego")

    def test_peak_pending_high_watermark(self, service_setup):
        blink, entities, mentions = service_setup
        pipeline = make_pipeline(blink, entities)
        with LinkingService(pipeline, max_batch_size=64, max_wait_ms=60_000.0) as service:
            assert service.peak_pending == 0
            futures = [service.submit(mention) for mention in mentions[:6]]
            assert service.peak_pending == 6
            assert service.reset_peak_pending() == service.pending
            service.close(timeout=RESULT_TIMEOUT)
            for future in futures:
                future.result(timeout=0)
        assert service.pending == 0

    def test_warm_up_flat_index_is_noop(self, service_setup):
        blink, entities, _ = service_setup
        flat = blink.biencoder.build_index(entities)
        pipeline = EntityLinkingPipeline(blink.biencoder, flat, blink.crossencoder, k=4)
        with LinkingService(pipeline) as service:
            assert service.warm_up() == []

    def test_invalid_parameters_rejected(self, service_setup):
        blink, entities, _ = service_setup
        pipeline = make_pipeline(blink, entities)
        with pytest.raises(ValueError):
            LinkingService(pipeline, max_batch_size=0)
        with pytest.raises(ValueError):
            LinkingService(pipeline, max_wait_ms=-1.0)

    def test_default_batch_size_follows_pipeline(self, service_setup):
        blink, entities, _ = service_setup
        pipeline = make_pipeline(blink, entities)
        service = LinkingService(pipeline, start=False)
        assert service.max_batch_size == pipeline.batch_size
        service.close()

    def test_start_is_idempotent(self, service_setup):
        blink, entities, mentions = service_setup
        service = LinkingService(make_pipeline(blink, entities), max_wait_ms=2.0)
        service.start()  # no-op while running
        assert service.running
        assert service.link(mentions[0], timeout=RESULT_TIMEOUT) is not None
        service.close(timeout=RESULT_TIMEOUT)
        service.close()  # idempotent


class TestServiceSnapshotIntegration:
    def test_snapshot_round_trip_through_service(self, service_setup, tmp_path):
        # Save the live index, reload it through the bi-encoder (which rebinds
        # embed_fn), and serve from the restored index: predictions must be
        # identical to the pre-save service.
        blink, entities, mentions = service_setup
        index = blink.biencoder.build_sharded_index(entities)
        pipeline = EntityLinkingPipeline(
            blink.biencoder, index, blink.crossencoder, k=4, batch_size=8
        )
        expected = pipeline.link(mentions)
        index.save(tmp_path / "snapshot")

        restored = blink.biencoder.load_sharded_index(tmp_path / "snapshot")
        restored_pipeline = EntityLinkingPipeline(
            blink.biencoder, restored, blink.crossencoder, k=4, batch_size=8
        )
        with LinkingService(restored_pipeline, max_batch_size=4, max_wait_ms=5.0) as service:
            results = [
                service.submit(mention).result(timeout=RESULT_TIMEOUT)
                for mention in mentions
            ]
        for got, want in zip(results, expected):
            assert got.candidate_ids == want.candidate_ids
            # Rankings are identical; raw scores may differ by ~1 ulp because
            # BLAS results depend on buffer alignment after reload.
            assert np.allclose(got.retrieval_scores, want.retrieval_scores,
                               rtol=0.0, atol=1e-12)
            assert got.predicted_entity_id == want.predicted_entity_id
