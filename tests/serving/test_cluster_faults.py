"""Fault-injection tests for the replica pool and router.

Each test injures the cluster while traffic is in flight and asserts the
router degrades the way the design promises: kills requeue (no request is
ever lost), slow replicas get routed around, sheds stop once the backlog
drains, and drain races with concurrent submits resolve without dropping
anything.  The whole module carries the ``chaos`` marker — the tests sleep
through injected delays and freezes, so tier-1 skips them
(``pytest -m chaos tests/serving`` runs them explicitly).
"""

import threading
import time

import pytest

from repro.data import split_domain
from repro.linking import BlinkPipeline
from repro.serving import (
    AdmissionPolicy,
    EntityLinkingPipeline,
    FaultPlan,
    ProcessReplica,
    RejectedError,
    ReplicaPool,
    Router,
)
from repro.utils.config import BiEncoderConfig, CrossEncoderConfig, EncoderConfig

pytestmark = pytest.mark.chaos

ENC = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=32)
BI_CFG = BiEncoderConfig(encoder=ENC, epochs=1, batch_size=8, learning_rate=5e-3)
CX_CFG = CrossEncoderConfig(encoder=ENC, epochs=1, batch_size=4, num_candidates=3, learning_rate=5e-3)

RESULT_TIMEOUT = 30.0


@pytest.fixture(scope="module")
def fault_setup(tiny_corpus, tiny_tokenizer):
    worlds = ["lego", "yugioh"]
    entities = [e for world in worlds for e in tiny_corpus.entities(world)]
    mentions = []
    for world in worlds:
        mentions.extend(
            split_domain(tiny_corpus, world, seed_size=20, dev_size=10).test[:12]
        )
    blink = BlinkPipeline(tiny_tokenizer, BI_CFG, CX_CFG)
    index = blink.biencoder.build_sharded_index(entities, lazy=False)
    pipeline = EntityLinkingPipeline(
        blink.biencoder, index, blink.crossencoder, k=4, batch_size=8
    )
    pipeline.link(mentions[:8])  # warm encoder caches
    return pipeline, mentions


def make_router(pipeline, replicas=3, **kwargs):
    pool = ReplicaPool.from_pipeline(pipeline, replicas=replicas, max_wait_ms=5.0)
    return Router(pool, seed=13, **kwargs)


class TestKillReplica:
    def test_kill_mid_stream_requeues_all_requests(self, fault_setup):
        # Freeze one replica so it accumulates a queue plus an in-flight
        # batch, kill it, and require every one of its requests to complete
        # on the survivors — the zero-lost-requests invariant.
        pipeline, mentions = fault_setup
        with make_router(pipeline, replicas=3, affinity=False) as router:
            victim = router.pool.replica(0)
            victim.freeze()
            futures = [router.submit(m) for m in mentions * 2]
            for _ in range(200):  # wait until the victim owns some requests
                if victim.pending > 0:
                    break
                time.sleep(0.01)
            assert victim.pending > 0
            router.apply_fault(FaultPlan.kill(at=0.0, replica=0).events[0])
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
        assert len(results) == len(mentions) * 2
        snapshot = router.stats.snapshot()["router"]
        assert snapshot["errors"] == 0
        assert snapshot["deaths"] == 1
        assert snapshot["requeued"] > 0
        assert router.stats.recovery_seconds is not None

    def test_kill_process_replica_requeues(self, fault_setup):
        pipeline, mentions = fault_setup
        pool = ReplicaPool.from_pipeline(
            pipeline, replicas=2, process_replicas=1, max_wait_ms=5.0
        )
        with Router(pool, seed=13, affinity=False) as router:
            assert isinstance(pool.replica(1), ProcessReplica)
            futures = [router.submit(m) for m in mentions * 2]
            pool.kill(1)
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            assert len(results) == len(mentions) * 2
            assert not pool.replica(1).process_alive

    def test_restart_brings_fresh_generation_back(self, fault_setup):
        pipeline, mentions = fault_setup
        with make_router(pipeline, replicas=2, affinity=False) as router:
            router.pool.kill(0)
            fresh = router.pool.restart(0)
            assert fresh.state == "healthy"
            assert "@g1" in fresh.name
            futures = [router.submit(m) for m in mentions]
            for future in futures:
                future.result(timeout=RESULT_TIMEOUT)
            # The fresh generation actually takes traffic again.
            assert router.pool.healthy_slots() == [0, 1]


class TestSlowReplica:
    def test_router_routes_around_slow_replica(self, fault_setup):
        # Give replica 0 a hefty per-batch delay, then send traffic in
        # waves: the healthy replicas drain between waves while the slow
        # one keeps a backlog, so least-pending steers later waves away.
        pipeline, mentions = fault_setup
        with make_router(pipeline, replicas=3, affinity=False) as router:
            router.apply_fault(FaultPlan.slow(at=0.0, replica=0, delay=0.4).events[0])
            futures = []
            for _ in range(4):
                futures.extend(router.submit(m) for m in mentions[:9])
                time.sleep(0.25)
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            assert len(results) == 36
            shot = {
                r["name"]: r["mentions"]
                for r in router.stats.snapshot()["per_replica"]
            }
        assert shot["replica-0"] < shot["replica-1"]
        assert shot["replica-0"] < shot["replica-2"]

    def test_frozen_replica_backlog_drains_after_thaw(self, fault_setup):
        pipeline, mentions = fault_setup
        with make_router(pipeline, replicas=2, affinity=False) as router:
            router.pool.replica(0).freeze()
            futures = [router.submit(m) for m in mentions]
            time.sleep(0.1)
            router.pool.replica(0).unfreeze()
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
        assert len(results) == len(mentions)


class TestShedThenRecover:
    def test_rejections_stop_once_pending_drains(self, fault_setup):
        pipeline, mentions = fault_setup
        router = make_router(
            pipeline, replicas=2, affinity=False,
            admission=AdmissionPolicy(watermark=4),
        )
        try:
            for replica in router.pool.replicas:
                replica.freeze()
            admitted = [router.submit(m) for m in mentions[:4]]
            overflow = [router.submit(m) for m in mentions[4:10]]
            for future in overflow:
                with pytest.raises(RejectedError):
                    future.result(timeout=0)
            assert router.stats.shed_total == 6
            # Thaw and let the admitted backlog drain completely.
            for replica in router.pool.replicas:
                replica.unfreeze()
            for future in admitted:
                future.result(timeout=RESULT_TIMEOUT)
            assert router.pending == 0
            # Recovery: traffic fitting under the watermark is admitted
            # again — the shed counter stays where the overflow left it.
            retry = [router.submit(m) for m in mentions[4:8]]
            for future in retry:
                future.result(timeout=RESULT_TIMEOUT)
            assert router.stats.shed_total == 6  # unchanged
        finally:
            router.close()


class TestDrainDuringSubmit:
    def test_drain_races_concurrent_submits_without_loss(self, fault_setup):
        # One thread drains replica 0 while the main thread keeps
        # submitting; every submit must either complete on a healthy
        # replica (requeued if it raced onto the draining one) — none may
        # be dropped or stuck.
        pipeline, mentions = fault_setup
        with make_router(pipeline, replicas=3, affinity=False) as router:
            futures = [router.submit(m) for m in mentions]
            drainer = threading.Thread(
                target=router.pool.drain, args=(0,), daemon=True
            )
            drainer.start()
            for _ in range(3):
                futures.extend(router.submit(m) for m in mentions)
            drainer.join(timeout=RESULT_TIMEOUT)
            assert not drainer.is_alive()
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
        assert len(results) == len(mentions) * 4
        assert router.pool.replica(0).state == "stopped"
        assert router.stats.snapshot()["router"]["errors"] == 0

    def test_harness_style_health_check_recovers_silent_death(self, fault_setup):
        # A replica whose scheduler thread dies without going through
        # kill() is detected by health_check, and its stranded requests are
        # requeued rather than left hanging.
        pipeline, mentions = fault_setup
        with make_router(pipeline, replicas=2, affinity=False) as router:
            victim = router.pool.replica(0)
            victim.freeze()
            futures = [router.submit(m) for m in mentions]
            for _ in range(200):
                if victim.pending > 0:
                    break
                time.sleep(0.01)
            # Simulate a silent crash: flip the lifecycle state without
            # going through the public kill() path, leaving the queued
            # requests stranded on a replica the router believes is dead.
            victim._state = "dead"
            probes = router.health_check()
            assert any(p.state == "dead" for p in probes)
            victim.unfreeze()
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
        assert len(results) == len(mentions)
