"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import OverlapCategory, categorize
from repro.eval.metrics import compute_metrics
from repro.linking.blink import LinkingPrediction
from repro.meta import normalize_weights
from repro.nn import Tensor
from repro.nn import functional as F
from repro.text import Vocabulary, normalize_text, rouge_1, simple_tokenize

words = st.text(alphabet="abcdefghij ", min_size=0, max_size=30)
small_floats = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


class TestTextProperties:
    @given(words)
    @settings(max_examples=50, deadline=None)
    def test_normalize_is_idempotent(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once

    @given(words)
    @settings(max_examples=50, deadline=None)
    def test_tokenize_produces_normalized_tokens(self, text):
        for token in simple_tokenize(text):
            assert token == normalize_text(token)

    @given(words, words)
    @settings(max_examples=50, deadline=None)
    def test_rouge_f1_bounded_and_symmetric_on_identical(self, left, right):
        score = rouge_1(left, right)
        assert 0.0 <= score.f1 <= 1.0
        if simple_tokenize(left):
            assert rouge_1(left, left).f1 == 1.0

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=8), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_vocabulary_roundtrip(self, tokens):
        vocabulary = Vocabulary(tokens)
        for token in tokens:
            assert vocabulary.id_to_token(vocabulary.token_to_id(token)) == token

    @given(words, words)
    @settings(max_examples=50, deadline=None)
    def test_categorize_always_returns_a_category(self, surface, title):
        assert categorize(surface, title) in set(OverlapCategory)


class TestWeightProperties:
    @given(st.lists(small_floats, min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_normalized_weights_are_a_distribution_or_zero(self, raw):
        weights = normalize_weights(np.array(raw))
        assert np.all(weights >= 0.0)
        total = weights.sum()
        assert np.isclose(total, 1.0) or total == 0.0

    @given(st.lists(small_floats, min_size=2, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_normalized_weights_preserve_order(self, raw):
        array = np.array(raw)
        weights = normalize_weights(array)
        positive = array > 0
        if positive.sum() >= 2:
            indices = np.where(positive)[0]
            ordered = sorted(indices, key=lambda i: array[i])
            for earlier, later in zip(ordered, ordered[1:]):
                assert weights[earlier] <= weights[later] + 1e-12


class TestNnProperties:
    @given(st.lists(st.lists(small_floats, min_size=3, max_size=3), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_softmax_rows_sum_to_one(self, rows):
        logits = Tensor(np.array(rows))
        out = F.softmax(logits, axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)
        assert np.all(out.data >= 0.0)

    @given(st.lists(small_floats, min_size=2, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_nonnegative(self, logits):
        tensor = Tensor(np.array(logits)[None, :])
        loss = F.cross_entropy(tensor, [0])
        assert loss.item() >= -1e-9

    @given(st.lists(small_floats, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        tensor = Tensor(np.array(values), requires_grad=True)
        tensor.sum().backward()
        assert np.allclose(tensor.grad, 1.0)


class TestMetricProperties:
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_unnormalized_accuracy_identity(self, outcomes):
        predictions = []
        for retrieved, correct in outcomes:
            candidates = ["gold"] if retrieved else ["other"]
            predicted = "gold" if (correct and retrieved) else "wrong"
            predictions.append(
                LinkingPrediction(
                    mention_id="m",
                    gold_entity_id="gold",
                    candidate_ids=candidates,
                    predicted_entity_id=predicted,
                )
            )
        metrics = compute_metrics(predictions)
        assert 0.0 <= metrics.recall <= 100.0
        assert 0.0 <= metrics.unnormalized_accuracy <= metrics.recall + 1e-9
        expected = metrics.recall * metrics.normalized_accuracy / 100.0
        assert np.isclose(metrics.unnormalized_accuracy, expected)
