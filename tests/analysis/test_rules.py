"""Per-rule fixtures: each rule fires on the bug pattern it encodes,
stays quiet on the compliant shape, and honours inline suppressions."""

import textwrap

import pytest

from repro.analysis import LintConfig, lint_source

NN_PATH = "src/repro/nn/flags.py"
SERVING_PATH = "src/repro/serving/widget.py"
GENERATION_PATH = "src/repro/generation/decode.py"
SRC_PATH = "src/repro/training/loop.py"
TESTS_PATH = "tests/test_widget.py"


def lint(source, path, rule, **options):
    config = LintConfig(
        enabled=[rule],
        rule_options={rule: options} if options else {},
    )
    return lint_source(textwrap.dedent(source), path, config=config)


# ----------------------------------------------------------------------
# thread-local-state
# ----------------------------------------------------------------------
class TestThreadLocalState:
    RULE = "thread-local-state"

    def test_global_rebinding_flagged(self):
        findings = lint(
            """
            _grad_enabled = True

            def set_grad(value):
                global _grad_enabled
                _grad_enabled = value
            """,
            NN_PATH, self.RULE,
        )
        assert [f.rule for f in findings] == [self.RULE]
        assert findings[0].symbol == "_grad_enabled"
        assert findings[0].line == 2  # anchored at the module assignment

    def test_container_mutation_from_function_flagged(self):
        findings = lint(
            """
            _PENDING = {}

            def remember(key, value):
                _PENDING[key] = value
            """,
            SERVING_PATH, self.RULE,
        )
        assert [f.symbol for f in findings] == ["_PENDING"]

    def test_threading_local_is_compliant(self):
        findings = lint(
            """
            import threading

            _state = threading.local()

            def set_grad(value):
                _state.enabled = value
            """,
            NN_PATH, self.RULE,
        )
        assert findings == []

    def test_module_scope_seeding_is_compliant(self):
        findings = lint(
            """
            _TABLE = {}
            _TABLE["default"] = 1.0

            def lookup(key):
                return _TABLE[key]
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []

    def test_out_of_scope_path_ignored(self):
        findings = lint(
            """
            _FLAG = True

            def flip():
                global _FLAG
                _FLAG = not _FLAG
            """,
            SRC_PATH, self.RULE,  # training/, not nn/ or serving/
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            _FLAG = True  # repro: disable=thread-local-state

            def flip():
                global _FLAG
                _FLAG = not _FLAG
            """,
            NN_PATH, self.RULE,
        )
        assert findings == []


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    RULE = "lock-discipline"

    def test_unguarded_mutation_flagged(self):
        findings = lint(
            """
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def record(self):
                    with self._lock:
                        self.count += 1

                def reset(self):
                    self.count = 0
            """,
            SERVING_PATH, self.RULE,
        )
        assert [f.symbol for f in findings] == ["Stats.reset"]
        assert "self.count" in findings[0].message

    def test_all_mutations_guarded_compliant(self):
        findings = lint(
            """
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def record(self):
                    with self._lock:
                        self.count += 1

                def reset(self):
                    with self._lock:
                        self.count = 0
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []

    def test_locked_suffix_method_assumed_held(self):
        findings = lint(
            """
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def record(self):
                    with self._lock:
                        self.count += 1
                        self._bump_locked()

                def _bump_locked(self):
                    self.count += 1
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []

    def test_dataclass_field_lock_detected(self):
        findings = lint(
            """
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class Window:
                _lock: threading.Lock = field(default_factory=threading.Lock)
                total: float = 0.0

                def add(self, value):
                    with self._lock:
                        self.total += value

                def drop(self):
                    self.total = 0.0
            """,
            SERVING_PATH, self.RULE,
        )
        assert [f.symbol for f in findings] == ["Window.drop"]

    def test_condition_counts_as_lock(self):
        findings = lint(
            """
            import threading

            class Queue:
                def __init__(self):
                    self._ready = threading.Condition()
                    self.items = []

                def put(self, item):
                    with self._ready:
                        self.items.append(item)

                def clear(self):
                    self.items.clear()
            """,
            SERVING_PATH, self.RULE,
        )
        assert [f.symbol for f in findings] == ["Queue.clear"]

    def test_unguarded_attrs_elsewhere_not_flagged(self):
        # Attributes never mutated under the lock are not "guarded".
        findings = lint(
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                    self.name = "svc"

                def record(self):
                    with self._lock:
                        self.count += 1

                def rename(self, name):
                    self.name = name
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def record(self):
                    with self._lock:
                        self.count += 1

                def reset(self):
                    self.count = 0  # repro: disable=lock-discipline
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []


# ----------------------------------------------------------------------
# probe-mode-discipline
# ----------------------------------------------------------------------
class TestProbeModeDiscipline:
    RULE = "probe-mode-discipline"

    def test_unrestored_train_flagged(self):
        findings = lint(
            """
            def fit(model, batches):
                model.train()
                for batch in batches:
                    model.step(batch)
                model.eval()
            """,
            SRC_PATH, self.RULE,
        )
        assert [f.symbol for f in findings] == ["fit"]
        assert "finally" in findings[0].message

    def test_restore_in_finally_compliant(self):
        findings = lint(
            """
            def fit(model, batches):
                model.train()
                try:
                    for batch in batches:
                        model.step(batch)
                finally:
                    model.eval()
            """,
            SRC_PATH, self.RULE,
        )
        assert findings == []

    def test_snapshot_restore_compliant(self):
        findings = lint(
            """
            def probe(model, batch):
                was_training = model.training
                model.train(True)
                try:
                    return model.loss(batch)
                finally:
                    model.train(was_training)
            """,
            SRC_PATH, self.RULE,
        )
        assert findings == []

    def test_trainer_entry_point_not_a_toggle(self):
        # pipeline.train(pairs, epochs=3) shares the name, not the semantics.
        findings = lint(
            """
            def run(pipeline, pairs):
                return pipeline.train(pairs, epochs=3)
            """,
            SRC_PATH, self.RULE,
        )
        assert findings == []

    def test_bare_no_grad_call_flagged(self):
        findings = lint(
            """
            from repro.nn import no_grad

            def probe(model, batch):
                no_grad()
                return model.loss(batch)
            """,
            SRC_PATH, self.RULE,
        )
        assert len(findings) == 1
        assert "with" in findings[0].message

    def test_with_no_grad_compliant(self):
        findings = lint(
            """
            from repro.nn import no_grad

            def probe(model, batch):
                with no_grad():
                    return model.loss(batch)
            """,
            SRC_PATH, self.RULE,
        )
        assert findings == []

    def test_grad_state_write_outside_owner_flagged(self):
        findings = lint(
            """
            from repro.nn.tensor import _grad_state

            def force_eval():
                _grad_state.enabled = False
            """,
            SRC_PATH, self.RULE,
        )
        assert len(findings) == 1
        assert "_grad_state" in findings[0].message

    def test_suppression(self):
        findings = lint(
            """
            def fit(model, batches):
                model.train()  # repro: disable=probe-mode-discipline
                for batch in batches:
                    model.step(batch)
                model.eval()
            """,
            SRC_PATH, self.RULE,
        )
        assert findings == []


# ----------------------------------------------------------------------
# inference-dtype
# ----------------------------------------------------------------------
class TestInferenceDtype:
    RULE = "inference-dtype"

    def test_np_float64_attribute_flagged(self):
        findings = lint(
            """
            import numpy as np

            def decode_step(logits):
                return np.asarray(logits, dtype=np.float64)
            """,
            GENERATION_PATH, self.RULE,
        )
        assert [f.symbol for f in findings] == ["decode_step"]

    def test_string_literal_flagged(self):
        findings = lint(
            """
            import numpy as np

            def decode_step(logits):
                return logits.astype("float64")
            """,
            SERVING_PATH, self.RULE,
        )
        assert len(findings) == 1

    def test_docstring_mention_not_flagged(self):
        findings = lint(
            '''
            def decode_step(logits):
                """Latencies are aggregated in float64 elsewhere."""
                return logits
            ''',
            GENERATION_PATH, self.RULE,
        )
        assert findings == []

    def test_training_path_out_of_scope(self):
        findings = lint(
            """
            import numpy as np

            def batch_loss(values):
                return np.asarray(values, dtype=np.float64).sum()
            """,
            SRC_PATH, self.RULE,  # training/, not serving/ or generation/
        )
        assert findings == []

    def test_dtype_inherit_compliant(self):
        findings = lint(
            """
            import numpy as np

            def decode_step(logits, memory):
                return np.asarray(logits, dtype=memory.dtype)
            """,
            GENERATION_PATH, self.RULE,
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            import numpy as np

            def percentiles(samples):
                data = np.asarray(samples, dtype=np.float64)  # repro: disable=inference-dtype
                return np.percentile(data, [50, 99])
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []


# ----------------------------------------------------------------------
# future-hygiene
# ----------------------------------------------------------------------
class TestFutureHygiene:
    RULE = "future-hygiene"

    def test_unguarded_settle_on_shared_future_flagged(self):
        findings = lint(
            """
            def finalize(request, value):
                request.caller.set_result(value)
            """,
            SERVING_PATH, self.RULE,
        )
        assert [f.symbol for f in findings] == ["finalize"]
        assert "InvalidStateError" in findings[0].message

    def test_guarded_settle_compliant(self):
        findings = lint(
            """
            from concurrent.futures import InvalidStateError

            def finalize(request, value):
                try:
                    request.caller.set_result(value)
                except InvalidStateError:
                    pass
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []

    def test_fresh_local_settle_before_escape_compliant(self):
        # Router.submit's shed path: settle before anyone can see it.
        findings = lint(
            """
            from concurrent.futures import Future

            def submit(shed):
                caller = Future()
                if shed:
                    caller.set_exception(RuntimeError("shed"))
                    return caller
                enqueue(caller)
                return caller
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []

    def test_settle_after_escape_flagged(self):
        findings = lint(
            """
            from concurrent.futures import Future

            def submit(queue, value):
                caller = Future()
                queue.put(caller)
                caller.set_result(value)
                return caller
            """,
            SERVING_PATH, self.RULE,
        )
        assert len(findings) == 1
        assert "set_result" in findings[0].message

    def test_orphan_future_flagged(self):
        findings = lint(
            """
            from concurrent.futures import Future

            def submit():
                caller = Future()
                return None
            """,
            SERVING_PATH, self.RULE,
        )
        assert len(findings) == 1
        assert "never settled" in findings[0].message

    def test_raising_done_callback_flagged(self):
        findings = lint(
            """
            class Router:
                def dispatch(self, inner, request):
                    inner.add_done_callback(
                        lambda done: self._on_done(request, done)
                    )

                def _on_done(self, request, done):
                    if done.cancelled():
                        raise RuntimeError("cancelled")
            """,
            SERVING_PATH, self.RULE,
        )
        assert len(findings) == 1
        assert "done-callback" in findings[0].message

    def test_non_raising_callback_compliant(self):
        findings = lint(
            """
            class Router:
                def dispatch(self, inner, request):
                    inner.add_done_callback(
                        lambda done: self._on_done(request, done)
                    )

                def _on_done(self, request, done):
                    try:
                        request.caller.set_result(done.result())
                    except Exception:
                        pass
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []

    def test_out_of_scope_path_ignored(self):
        findings = lint(
            """
            def finalize(request, value):
                request.caller.set_result(value)
            """,
            SRC_PATH, self.RULE,
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            def finalize(request, value):
                request.caller.set_result(value)  # repro: disable=future-hygiene
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []


# ----------------------------------------------------------------------
# pytest-marker-declared
# ----------------------------------------------------------------------
class TestPytestMarkerDeclared:
    RULE = "pytest-marker-declared"

    def test_undeclared_marker_flagged(self):
        findings = lint(
            """
            import pytest

            @pytest.mark.sloow
            def test_thing():
                pass
            """,
            TESTS_PATH, self.RULE, declared=["chaos"],
        )
        assert len(findings) == 1
        assert "sloow" in findings[0].message

    def test_declared_and_builtin_markers_compliant(self):
        findings = lint(
            """
            import pytest

            @pytest.mark.chaos
            @pytest.mark.parametrize("x", [1, 2])
            def test_thing(x):
                pass
            """,
            TESTS_PATH, self.RULE, declared=["chaos"],
        )
        assert findings == []

    def test_no_project_root_disables_rule(self):
        # Without a pytest.ini or explicit declared list the rule must not
        # guess — a snippet lint should not drown in false positives.
        findings = lint(
            """
            import pytest

            @pytest.mark.anything
            def test_thing():
                pass
            """,
            TESTS_PATH, self.RULE,
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            import pytest

            @pytest.mark.sloow  # repro: disable=pytest-marker-declared
            def test_thing():
                pass
            """,
            TESTS_PATH, self.RULE, declared=["chaos"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# bounded-wait
# ----------------------------------------------------------------------
class TestBoundedWait:
    RULE = "bounded-wait"

    BENCH_PATH = "src/repro/bench/ticker.py"

    def test_unbounded_event_wait_flagged(self):
        findings = lint(
            """
            def run(self):
                self._work_ready.wait()
            """,
            SERVING_PATH, self.RULE,
        )
        assert [f.rule for f in findings] == [self.RULE]
        assert findings[0].symbol == "self._work_ready.wait"
        assert "timeout" in findings[0].message

    def test_unbounded_join_and_result_flagged(self):
        findings = lint(
            """
            def drain(thread, future):
                thread.join()
                return future.result()
            """,
            self.BENCH_PATH, self.RULE,
        )
        assert sorted(f.symbol for f in findings) == [
            "future.result", "thread.join",
        ]

    def test_timeout_keyword_is_compliant(self):
        findings = lint(
            """
            def run(self):
                while not self._stop.wait(timeout=0.1):
                    self.tick()
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []

    def test_positional_timeout_is_compliant(self):
        findings = lint(
            """
            def drain(thread, future):
                thread.join(5.0)
                return future.result(30.0)
            """,
            self.BENCH_PATH, self.RULE,
        )
        assert findings == []

    def test_non_blocking_names_ignored(self):
        findings = lint(
            """
            def assemble(path, parts):
                return path.join(parts.result)
            """,
            SERVING_PATH, self.RULE,
        )
        # path.join(parts) passes a positional arg; bare attribute access
        # (no call) never fires.
        assert findings == []

    def test_out_of_scope_path_ignored(self):
        findings = lint(
            """
            def run(event):
                event.wait()
            """,
            SRC_PATH, self.RULE,  # training/, not serving/ or bench/
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            def run(self):
                self._done.wait()  # repro: disable=bounded-wait
            """,
            SERVING_PATH, self.RULE,
        )
        assert findings == []
