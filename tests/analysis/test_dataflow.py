"""Effect-summary extraction and fixpoint propagation: blocking,
lock acquisition, raise masking, grad reachability, toggle leaks,
and the content-hash summary cache."""

import textwrap

from repro.analysis.dataflow import ProjectContext


def build(files, cache_path=None):
    return ProjectContext.build(
        [(path, textwrap.dedent(source), None) for path, source in files.items()],
        cache_path=cache_path,
    )


class TestBlocking:
    def test_bare_wait_blocks_and_timeout_wait_does_not(self):
        project = build({
            "src/repro/pkg/a.py": """
                def bad(cv):
                    cv.wait()

                def good(cv):
                    cv.wait(timeout=1.0)
                """,
        })
        assert project.summaries["repro.pkg.a:bad"].blocks
        assert not project.summaries["repro.pkg.a:good"].blocks

    def test_recv_is_always_unbounded(self):
        project = build({
            "src/repro/pkg/a.py": """
                def pump(conn):
                    return conn.recv()
                """,
        })
        assert project.summaries["repro.pkg.a:pump"].blocks

    def test_blocks_propagates_through_two_hops(self):
        project = build({
            "src/repro/pkg/a.py": """
                def top(cv):
                    return mid(cv)

                def mid(cv):
                    return leaf(cv)

                def leaf(cv):
                    cv.wait()
                """,
        })
        assert project.summaries["repro.pkg.a:top"].blocks
        chain = project.blocking_witness("repro.pkg.a:top")
        assert [step.fid.split(":")[1] for step in chain] == ["top", "mid", "leaf"]
        assert "wait() without timeout" in chain[-1].describe()


class TestLockAcquisition:
    def test_with_self_lock_records_class_scoped_token(self):
        project = build({
            "src/repro/pkg/a.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def touch(self):
                        with self._lock:
                            return 1
                """,
        })
        assert project.summaries["repro.pkg.a:Box.touch"].acquires == {
            "repro.pkg.a:Box._lock"
        }

    def test_condition_alias_canonicalises_to_underlying_lock(self):
        project = build({
            "src/repro/pkg/a.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._ready = threading.Condition(self._lock)

                    def park(self):
                        with self._ready:
                            return 1
                """,
        })
        assert project.summaries["repro.pkg.a:Box.park"].acquires == {
            "repro.pkg.a:Box._lock"
        }

    def test_module_level_lock_token(self):
        project = build({
            "src/repro/pkg/a.py": """
                import threading

                _REGISTRY_LOCK = threading.Lock()

                def mutate():
                    with _REGISTRY_LOCK:
                        return 1
                """,
        })
        assert project.summaries["repro.pkg.a:mutate"].acquires == {
            "repro.pkg.a:_REGISTRY_LOCK"
        }


class TestRaisePropagation:
    def test_raises_propagate_and_subclass_handlers_mask(self):
        project = build({
            "src/repro/pkg/a.py": """
                class AppError(Exception):
                    pass

                class OverflowyError(AppError):
                    pass

                def leaf():
                    raise OverflowyError("full")

                def masked():
                    try:
                        return leaf()
                    except AppError:
                        return None

                def unmasked():
                    try:
                        return leaf()
                    except ValueError:
                        return None
                """,
        })
        assert "OverflowyError" in project.summaries["repro.pkg.a:leaf"].raises
        assert "OverflowyError" not in project.summaries["repro.pkg.a:masked"].raises
        assert "OverflowyError" in project.summaries["repro.pkg.a:unmasked"].raises

    def test_bare_reraise_handler_does_not_mask(self):
        project = build({
            "src/repro/pkg/a.py": """
                def leaf():
                    raise KeyError("missing")

                def logged():
                    try:
                        return leaf()
                    except KeyError:
                        raise
                """,
        })
        assert "KeyError" in project.summaries["repro.pkg.a:logged"].raises


class TestGradAndToggles:
    NN = """
        class Encoder:
            def forward(self, x):
                return x
        """

    def test_serving_call_into_nn_forward_is_grad_reachable(self):
        project = build({
            "src/repro/nn/enc.py": self.NN,
            "src/repro/serving/api.py": """
                from repro.nn.enc import Encoder

                class Service:
                    def __init__(self):
                        self.enc = Encoder()

                    def infer(self, x):
                        return self.enc.forward(x)
                """,
        })
        assert project.summaries["repro.serving.api:Service.infer"].grad
        chain = project.grad_witness("repro.serving.api:Service.infer")
        assert "Encoder.forward" in chain[-1].label

    def test_no_grad_at_the_call_site_masks_the_chain(self):
        project = build({
            "src/repro/nn/enc.py": self.NN,
            "src/repro/serving/api.py": """
                from repro.nn.enc import Encoder
                from repro.nn.backprop import no_grad

                class Service:
                    def __init__(self):
                        self.enc = Encoder()

                    def infer(self, x):
                        with no_grad():
                            return self.enc.forward(x)
                """,
        })
        assert not project.summaries["repro.serving.api:Service.infer"].grad

    def test_unrestored_train_toggle_is_an_effect(self):
        project = build({
            "src/repro/pkg/a.py": """
                def flip(model):
                    model.train()
                    return model

                def safe(model):
                    model.train()
                    try:
                        return model
                    finally:
                        model.eval()
                """,
        })
        assert project.summaries["repro.pkg.a:flip"].toggles
        assert not project.summaries["repro.pkg.a:safe"].toggles


class TestSummaryCache:
    FILES = {
        "src/repro/pkg/a.py": """
            def leaf(cv):
                cv.wait()
            """,
        "src/repro/pkg/b.py": """
            from repro.pkg.a import leaf

            def top(cv):
                return leaf(cv)
            """,
    }

    def test_warm_cache_hits_every_file_and_preserves_summaries(self, tmp_path):
        cache = tmp_path / "cache.json"
        cold = build(self.FILES, cache_path=cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == 2

        warm = build(self.FILES, cache_path=cache)
        assert warm.cache_hits == 2
        assert warm.cache_misses == 0
        assert warm.summaries["repro.pkg.b:top"].blocks

    def test_edited_file_misses_while_others_hit(self, tmp_path):
        cache = tmp_path / "cache.json"
        build(self.FILES, cache_path=cache)

        edited = dict(self.FILES)
        edited["src/repro/pkg/a.py"] += "\n\ndef extra():\n    return 1\n"
        warm = build(edited, cache_path=cache)
        assert warm.cache_hits == 1
        assert warm.cache_misses == 1
