"""Engine-level behaviour: registry, config, suppressions, reporters,
syntax-error handling and file discovery."""

import json

import pytest

from repro.analysis import (
    Finding,
    LintConfig,
    LintResult,
    Rule,
    SYNTAX_ERROR_RULE,
    iter_python_files,
    lint_source,
    registered_rules,
    render_json,
    render_text,
    run_lint,
    summarize,
)

EXPECTED_RULES = {
    "thread-local-state",
    "lock-discipline",
    "probe-mode-discipline",
    "inference-dtype",
    "future-hygiene",
    "pytest-marker-declared",
}


class TestRegistry:
    def test_all_domain_rules_registered(self):
        assert EXPECTED_RULES <= set(registered_rules())

    def test_rules_have_descriptions_and_paths(self):
        for name, cls in registered_rules().items():
            assert cls.description, name
            assert cls.default_paths, name

    def test_unknown_enabled_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintConfig(enabled=["no-such-rule"]).build_rules()

    def test_disabled_subtracts(self):
        rules = LintConfig(disabled=["inference-dtype"]).build_rules()
        assert "inference-dtype" not in {rule.name for rule in rules}

    def test_paths_option_rescopes_a_rule(self):
        source = "import numpy as np\nx = np.float64(1.0)\n"
        config = LintConfig(
            enabled=["inference-dtype"],
            rule_options={"inference-dtype": {"paths": ["lib/"]}},
        )
        assert lint_source(source, "lib/hot.py", config=config)
        assert not lint_source(source, "src/repro/serving/hot.py", config=config)


class TestSuppressions:
    def test_suppression_only_applies_to_named_rule(self):
        source = (
            "import numpy as np\n"
            "x = np.float64(1.0)  # repro: disable=lock-discipline\n"
        )
        findings = lint_source(
            source, "src/repro/serving/hot.py",
            config=LintConfig(enabled=["inference-dtype"]),
        )
        assert len(findings) == 1

    def test_disable_all(self):
        source = "import numpy as np\nx = np.float64(1.0)  # repro: disable=all\n"
        findings = lint_source(
            source, "src/repro/serving/hot.py",
            config=LintConfig(enabled=["inference-dtype"]),
        )
        assert findings == []

    def test_suppression_inside_string_literal_ignored(self):
        source = (
            "import numpy as np\n"
            'note = "repro: disable=inference-dtype"\n'
            "x = np.float64(1.0)\n"
        )
        findings = lint_source(
            source, "src/repro/serving/hot.py",
            config=LintConfig(enabled=["inference-dtype"]),
        )
        assert len(findings) == 1

    def test_multiple_rules_one_comment(self):
        source = (
            "import numpy as np\n"
            "x = np.float64(1.0)  # repro: disable=inference-dtype, lock-discipline\n"
        )
        findings = lint_source(
            source, "src/repro/serving/hot.py",
            config=LintConfig(enabled=["inference-dtype"]),
        )
        assert findings == []


class TestFindings:
    def test_describe_format(self):
        finding = Finding(
            path="src/repro/serving/x.py", line=7, rule="lock-discipline",
            message="bad", symbol="X.y",
        )
        assert finding.describe() == "src/repro/serving/x.py:7: lock-discipline: bad"

    def test_fingerprint_prefers_symbol(self):
        finding = Finding(
            path="a.py", line=1, rule="r", message="msg", symbol="Cls.m",
        )
        assert finding.fingerprint() == ("r", "a.py", "Cls.m")
        anonymous = Finding(path="a.py", line=1, rule="r", message="msg")
        assert anonymous.fingerprint() == ("r", "a.py", "msg")


class TestRunLint:
    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "serving" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        result = run_lint(
            [tmp_path / "src"], config=LintConfig(project_root=tmp_path),
        )
        assert [f.rule for f in result.findings] == [SYNTAX_ERROR_RULE]
        assert not result.ok

    def test_clean_tree_reports_ok_and_timing(self, tmp_path):
        good = tmp_path / "src" / "repro" / "serving" / "good.py"
        good.parent.mkdir(parents=True)
        good.write_text("VALUE = 1\n")
        result = run_lint(
            [tmp_path / "src"], config=LintConfig(project_root=tmp_path),
        )
        assert result.ok
        assert result.files == 1
        assert result.elapsed_seconds > 0
        assert result.files_per_second > 0

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "mod.cpython-311.py").write_text("")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["mod.py"]


class TestUnusedSuppression:
    def write(self, tmp_path, source):
        target = tmp_path / "src" / "repro" / "serving" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        return target

    def test_dead_suppression_is_flagged(self, tmp_path):
        self.write(tmp_path, "VALUE = 1  # repro: disable=inference-dtype\n")
        result = run_lint(
            [tmp_path / "src"], config=LintConfig(project_root=tmp_path),
        )
        assert [f.rule for f in result.findings] == ["unused-suppression"]
        assert result.findings[0].symbol == "disable=inference-dtype"
        assert result.findings[0].line == 1

    def test_used_suppression_is_not_flagged(self, tmp_path):
        self.write(
            tmp_path,
            "import numpy as np\n"
            "x = np.float64(1.0)  # repro: disable=inference-dtype\n",
        )
        result = run_lint(
            [tmp_path / "src"], config=LintConfig(project_root=tmp_path),
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_mid_comment_mention_is_not_a_suppression(self, tmp_path):
        # The marker must start the comment; prose that merely mentions it
        # neither suppresses nor counts as a dead suppression.
        self.write(
            tmp_path,
            "import numpy as np\n"
            "x = np.float64(1.0)  # see repro: disable=inference-dtype\n",
        )
        result = run_lint(
            [tmp_path / "src"], config=LintConfig(project_root=tmp_path),
        )
        assert [f.rule for f in result.findings] == ["inference-dtype"]


class TestChangedOnlyRestriction:
    def tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "serving"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text("def helper(x):\n    return x\n")
        (pkg / "b.py").write_text(
            "import numpy as np\n"
            "from repro.serving.a import helper\n\n"
            "def hot(x):\n"
            "    return np.asarray(helper(x), dtype=np.float64)\n"
        )
        (pkg / "unrelated.py").write_text(
            "import numpy as np\n\n"
            "def other(x):\n"
            "    return np.asarray(x, dtype=np.float64)\n"
        )
        return tmp_path / "src"

    def test_restriction_expands_to_reverse_dependency_closure(self, tmp_path):
        src = self.tree(tmp_path)
        result = run_lint(
            [src], config=LintConfig(project_root=tmp_path),
            restrict_paths=["src/repro/serving/a.py"],
        )
        # b.py calls into the changed file, so it is re-linted; the equally
        # dirty unrelated.py is out of the closure and stays unreported.
        assert [f.path for f in result.findings] == ["src/repro/serving/b.py"]

    def test_unrestricted_run_still_sees_everything(self, tmp_path):
        src = self.tree(tmp_path)
        result = run_lint([src], config=LintConfig(project_root=tmp_path))
        assert sorted(f.path for f in result.findings) == [
            "src/repro/serving/b.py",
            "src/repro/serving/unrelated.py",
        ]


class TestReporters:
    def _result(self):
        return LintResult(
            findings=[Finding(
                path="src/repro/serving/x.py", line=3,
                rule="lock-discipline", message="oops", symbol="X.y",
            )],
            files=10, elapsed_seconds=0.5, suppressed=2,
        )

    def test_render_text_contains_diagnostic_and_summary(self):
        text = render_text(self._result())
        assert "src/repro/serving/x.py:3: lock-discipline: oops" in text
        assert "1 finding(s)" in text
        assert "2 suppressed" in text

    def test_render_json_round_trips(self):
        payload = json.loads(render_json(self._result()))
        assert payload["summary"]["new"] == 1
        assert payload["summary"]["ok"] is False
        assert payload["summary"]["files"] == 10
        assert payload["findings"][0]["rule"] == "lock-discipline"

    def test_summarize_clean(self):
        clean = LintResult(findings=[], files=3, elapsed_seconds=0.1)
        assert "clean" in summarize(clean)
