"""The shipped tree is lint-clean, and seeding any of the five historical
bug patterns back into the real sources makes the gate fail.

The seeding tests are the acceptance criterion for the whole framework:
each takes an actual repo file, re-introduces the exact pattern a past PR
shipped (and later fixed), and asserts the linter reports it with a
``file:line: rule:`` diagnostic.
"""

import subprocess
import sys
from pathlib import Path

from repro.analysis import Baseline, LintConfig, lint_source, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
RUN_LINT = REPO_ROOT / "scripts" / "run_lint.py"


def read(rel):
    return (REPO_ROOT / rel).read_text(encoding="utf-8")


class TestShippedTreeIsClean:
    def test_src_clean_modulo_committed_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        result = run_lint(
            [SRC], config=LintConfig(project_root=REPO_ROOT), baseline=baseline,
        )
        assert result.ok, "\n".join(f.describe() for f in result.findings)
        assert not result.stale, "\n".join(e.describe() for e in result.stale)

    def test_tests_and_benchmarks_marker_clean(self):
        result = run_lint(
            [REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            config=LintConfig(
                enabled=["pytest-marker-declared"], project_root=REPO_ROOT,
            ),
        )
        assert result.ok, "\n".join(f.describe() for f in result.findings)

    def test_baseline_entries_are_justified(self):
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        for entry in baseline:
            assert entry.justification, entry.describe()
            assert not entry.justification.startswith("TODO"), entry.describe()


class TestSeededHistoricalBugs:
    """Re-introduce each fixed bug pattern; the matching rule must fire."""

    def seeded(self, source, path, rule):
        return lint_source(
            source, path,
            config=LintConfig(enabled=[rule], project_root=REPO_ROOT),
        )

    def test_pr6_global_grad_flag(self):
        # PR 6 shipped the grad flag as a process-global mutated via
        # `global` from replica threads.  Revert tensor.py's thread-local
        # state to that shape.
        source = read("src/repro/nn/tensor.py")
        assert "threading.local" in source
        seeded = source.replace(
            "import threading",
            "import threading\n\n_grad_enabled = True\n\n"
            "def _set_grad_enabled(value):\n"
            "    global _grad_enabled\n"
            "    _grad_enabled = value\n",
            1,
        )
        findings = self.seeded(
            seeded, "src/repro/nn/tensor.py", "thread-local-state",
        )
        assert any(f.symbol == "_grad_enabled" for f in findings)

    def test_pr5_stats_mutation_outside_lock(self):
        # PR 5's PipelineStats mutated counters outside _lock.  Move the
        # guarded reset body out of its `with self._lock:` block.
        source = read("src/repro/serving/pipeline.py")
        target = "    def reset(self) -> None:\n        with self._lock:\n"
        assert target in source
        seeded = source.replace(
            target,
            "    def reset(self) -> None:\n        if True:\n",
            1,
        )
        findings = self.seeded(
            seeded, "src/repro/serving/pipeline.py", "lock-discipline",
        )
        assert any(f.symbol == "PipelineStats.reset" for f in findings)

    def test_pr4_probe_without_restore(self):
        # PR 4's reweighter called eval() for the probe and only switched
        # back at the end of the happy path.  Strip _probe_mode's
        # try/finally down to that shape.
        source = read("src/repro/meta/reweight.py")
        assert "finally:" in source
        seeded = source.replace(
            "        try:\n            yield\n        finally:\n"
            "            self.model.train(was_training)",
            "        yield\n        self.model.train(was_training)",
            1,
        )
        assert seeded != source, "reweight.py _probe_mode shape changed"
        findings = self.seeded(
            seeded, "src/repro/meta/reweight.py", "probe-mode-discipline",
        )
        assert any("finally" in f.message for f in findings)

    def test_hardcoded_float64_in_decode(self):
        # The greedy-decode step upcast every logit slice to float64.
        source = read("src/repro/generation/seq2seq.py")
        assert "dtype=step_dtype" in source
        seeded = source.replace("dtype=step_dtype)", "dtype=np.float64)", 1)
        findings = self.seeded(
            seeded, "src/repro/generation/seq2seq.py", "inference-dtype",
        )
        assert any(f.symbol.endswith("greedy_decode") for f in findings)

    def test_unguarded_future_settle(self):
        # Strip the InvalidStateError guard from LinkingService._settle:
        # a racing abort() then raises on the worker thread.
        source = read("src/repro/serving/service.py")
        target = (
            "        try:\n"
            "            if error is not None:\n"
            "                future.set_exception(error)\n"
            "            else:\n"
            "                future.set_result(result)\n"
            "        except InvalidStateError:\n"
            "            pass\n"
        )
        assert target in source
        seeded = source.replace(
            target,
            "        if error is not None:\n"
            "            future.set_exception(error)\n"
            "        else:\n"
            "            future.set_result(result)\n",
            1,
        )
        findings = self.seeded(
            seeded, "src/repro/serving/service.py", "future-hygiene",
        )
        assert any("InvalidStateError" in f.message for f in findings)


class TestGateEndToEnd:
    def test_cli_gate_fails_on_seeded_bug_with_diagnostic(self, tmp_path):
        # Full-loop demo: run_lint.py over a seeded copy of a real file
        # exits non-zero and prints a file:line:rule diagnostic.
        source = read("src/repro/serving/pipeline.py")
        target = "    def reset(self) -> None:\n        with self._lock:\n"
        seeded_path = tmp_path / "src" / "repro" / "serving" / "pipeline.py"
        seeded_path.parent.mkdir(parents=True)
        seeded_path.write_text(source.replace(
            target, "    def reset(self) -> None:\n        if True:\n", 1,
        ))
        proc = subprocess.run(
            [sys.executable, str(RUN_LINT), str(seeded_path), "--no-baseline"],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert proc.returncode == 1
        assert ": lock-discipline: " in proc.stdout
        # Diagnostic line format: path:line: rule: message
        diagnostic = next(
            line for line in proc.stdout.splitlines()
            if ": lock-discipline: " in line
        )
        location = diagnostic.split(": lock-discipline: ")[0]
        assert location.rsplit(":", 1)[1].isdigit()

    def test_cli_gate_clean_on_shipped_tree(self):
        proc = subprocess.run(
            [sys.executable, str(RUN_LINT), "src"],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
