"""Call-graph resolution edge cases: diamonds, super(), decorators,
aliased imports, and the conservative dynamic-dispatch fallback."""

import textwrap

from repro.analysis.callgraph import DYNAMIC_CANDIDATE_CAP, path_to_module
from repro.analysis.dataflow import ProjectContext


def build(files):
    """ProjectContext over in-memory ``path -> source`` blobs."""
    return ProjectContext.build(
        [(path, textwrap.dedent(source), None) for path, source in files.items()]
    )


def edges(project, fid):
    """Flattened (callee, kind) pairs for every call site of ``fid``."""
    out = []
    for call in project.graph.calls_from(fid):
        out.extend(call.callees)
    return out


class TestPathToModule:
    def test_src_relative(self):
        assert path_to_module("src/repro/serving/cluster.py") == (
            "repro.serving.cluster"
        )

    def test_seeded_absolute_copy_resolves_identically(self):
        assert path_to_module("/tmp/seed/src/repro/serving/cluster.py") == (
            "repro.serving.cluster"
        )

    def test_package_init(self):
        assert path_to_module("src/repro/nn/__init__.py") == "repro.nn"


class TestMethodResolution:
    def test_diamond_inheritance_follows_mro(self):
        # D(B, C), B(A), C(A); only C and A define ping.  C3 (and our BFS)
        # place C before A, so D's self.ping() must hit C.ping.
        project = build({
            "src/repro/pkg/diamond.py": """
                class A:
                    def ping(self):
                        return "a"

                class B(A):
                    pass

                class C(A):
                    def ping(self):
                        return "c"

                class D(B, C):
                    def go(self):
                        return self.ping()
                """,
        })
        assert edges(project, "repro.pkg.diamond:D.go") == [
            ("repro.pkg.diamond:C.ping", "method"),
        ]

    def test_super_call_skips_the_defining_class(self):
        project = build({
            "src/repro/pkg/sup.py": """
                class Base:
                    def run(self):
                        return 1

                class Child(Base):
                    def run(self):
                        return super().run() + 1
                """,
        })
        assert edges(project, "repro.pkg.sup:Child.run") == [
            ("repro.pkg.sup:Base.run", "super"),
        ]

    def test_decorated_function_still_resolves(self):
        project = build({
            "src/repro/pkg/deco.py": """
                import functools

                @functools.lru_cache(maxsize=None)
                def expensive(x):
                    return x * 2

                def caller():
                    return expensive(3)
                """,
        })
        assert edges(project, "repro.pkg.deco:caller") == [
            ("repro.pkg.deco:expensive", "direct"),
        ]
        info = project.table.functions["repro.pkg.deco:expensive"]
        assert "lru_cache" in info.decorators

    def test_typed_attribute_call_resolves_through_ctor(self):
        project = build({
            "src/repro/pkg/owner.py": """
                from repro.pkg.worker import Worker

                class Owner:
                    def __init__(self):
                        self.worker = Worker()

                    def go(self):
                        return self.worker.step()
                """,
            "src/repro/pkg/worker.py": """
                class Worker:
                    def step(self):
                        return 1
                """,
        })
        assert ("repro.pkg.worker:Worker.step", "attr") in edges(
            project, "repro.pkg.owner:Owner.go"
        )

    def test_string_annotation_types_an_attribute(self):
        project = build({
            "src/repro/pkg/ann.py": """
                class Pool:
                    def drain(self):
                        return 0

                class Stats:
                    def __init__(self, pool: "Pool") -> None:
                        self._pool = pool

                    def tick(self):
                        return self._pool.drain()
                """,
        })
        assert edges(project, "repro.pkg.ann:Stats.tick") == [
            ("repro.pkg.ann:Pool.drain", "attr"),
        ]


class TestImportResolution:
    def test_from_import_with_alias(self):
        project = build({
            "src/repro/pkg/a.py": """
                from repro.pkg.b import compute as c2

                def go():
                    return c2()
                """,
            "src/repro/pkg/b.py": """
                def compute():
                    return 1
                """,
        })
        assert edges(project, "repro.pkg.a:go") == [
            ("repro.pkg.b:compute", "direct"),
        ]

    def test_module_alias_attribute_call(self):
        project = build({
            "src/repro/pkg/a.py": """
                import repro.pkg.b as helpers

                def go():
                    return helpers.compute()
                """,
            "src/repro/pkg/b.py": """
                def compute():
                    return 1
                """,
        })
        assert edges(project, "repro.pkg.a:go") == [
            ("repro.pkg.b:compute", "direct"),
        ]

    def test_external_module_calls_resolve_to_nothing(self):
        project = build({
            "src/repro/pkg/a.py": """
                import numpy as np

                def go():
                    return np.zeros(3)
                """,
        })
        assert edges(project, "repro.pkg.a:go") == []


class TestDynamicFallback:
    def test_untyped_receiver_falls_back_to_all_same_name_defs(self):
        project = build({
            "src/repro/pkg/a.py": """
                class One:
                    def process(self):
                        return 1

                class Two:
                    def process(self):
                        return 2

                def go(thing):
                    return thing.process()
                """,
        })
        resolved = edges(project, "repro.pkg.a:go")
        assert sorted(resolved) == [
            ("repro.pkg.a:One.process", "dynamic"),
            ("repro.pkg.a:Two.process", "dynamic"),
        ]

    def test_too_common_names_resolve_to_nothing(self):
        classes = "\n".join(
            f"class C{i}:\n    def handle(self):\n        return {i}\n"
            for i in range(DYNAMIC_CANDIDATE_CAP + 1)
        )
        project = build({
            "src/repro/pkg/a.py": classes + "\ndef go(x):\n    return x.handle()\n",
        })
        assert edges(project, "repro.pkg.a:go") == []

    def test_blocking_primitives_never_resolve_to_project_methods(self):
        project = build({
            "src/repro/pkg/a.py": """
                class Fake:
                    def wait(self):
                        return 1

                def go(x):
                    return x.wait(timeout=1)
                """,
        })
        assert edges(project, "repro.pkg.a:go") == []


class TestReverseDependencyClosure:
    def test_closure_walks_callers_transitively(self):
        project = build({
            "src/repro/pkg/a.py": "def base():\n    return 1\n",
            "src/repro/pkg/b.py": (
                "from repro.pkg.a import base\n\n"
                "def mid():\n    return base()\n"
            ),
            "src/repro/pkg/c.py": (
                "from repro.pkg.b import mid\n\n"
                "def top():\n    return mid()\n"
            ),
            "src/repro/pkg/unrelated.py": "def other():\n    return 0\n",
        })
        closure = project.graph.reverse_dependency_paths(
            project.table, ["src/repro/pkg/a.py"]
        )
        assert closure == {
            "src/repro/pkg/a.py",
            "src/repro/pkg/b.py",
            "src/repro/pkg/c.py",
        }
