"""Baseline round-trip, matching semantics, and the run_lint.py CLI gate."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Finding,
    TODO_JUSTIFICATION,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
RUN_LINT = REPO_ROOT / "scripts" / "run_lint.py"


def make_finding(rule="inference-dtype", path="src/repro/serving/x.py",
                 symbol="X.y", line=3):
    return Finding(path=path, line=line, rule=rule, message="msg", symbol=symbol)


class TestBaselineMatching:
    def test_partition_splits_new_and_matched(self):
        baseline = Baseline([BaselineEntry(
            rule="inference-dtype", path="src/repro/serving/x.py", symbol="X.y",
        )])
        covered = make_finding()
        novel = make_finding(symbol="X.other")
        new, matched, stale = baseline.partition([covered, novel])
        assert new == [novel]
        assert matched == [covered]
        assert stale == []

    def test_line_drift_does_not_invalidate(self):
        baseline = Baseline([BaselineEntry(
            rule="inference-dtype", path="src/repro/serving/x.py", symbol="X.y",
        )])
        new, matched, _ = baseline.partition([make_finding(line=99)])
        assert new == [] and len(matched) == 1

    def test_count_budget_not_exceeded(self):
        # One entry cannot hide a second violation at the same symbol.
        baseline = Baseline([BaselineEntry(
            rule="inference-dtype", path="src/repro/serving/x.py",
            symbol="X.y", count=1,
        )])
        new, matched, _ = baseline.partition(
            [make_finding(line=3), make_finding(line=8)]
        )
        assert len(matched) == 1 and len(new) == 1

    def test_stale_entry_reported(self):
        baseline = Baseline([BaselineEntry(
            rule="inference-dtype", path="src/repro/serving/gone.py", symbol="X.y",
        )])
        new, matched, stale = baseline.partition([])
        assert new == [] and matched == []
        assert [entry.path for entry in stale] == ["src/repro/serving/gone.py"]


class TestRenameFallback:
    """A moved file should not invalidate its baseline entries: when the
    old path is gone, an entry may match a finding with the same
    ``(rule, symbol)`` at a new path."""

    def entry(self):
        return BaselineEntry(
            rule="inference-dtype", path="src/repro/serving/old.py",
            symbol="X.y",
        )

    def test_entry_follows_the_symbol_when_old_path_is_gone(self, tmp_path):
        baseline = Baseline([self.entry()])
        moved = make_finding(path="src/repro/serving/renamed.py")
        new, matched, stale = baseline.partition([moved], root=tmp_path)
        assert new == [] and matched == [moved] and stale == []

    def test_no_fallback_while_the_old_path_still_exists(self, tmp_path):
        old = tmp_path / "src" / "repro" / "serving" / "old.py"
        old.parent.mkdir(parents=True)
        old.write_text("VALUE = 1\n")
        baseline = Baseline([self.entry()])
        moved = make_finding(path="src/repro/serving/renamed.py")
        new, matched, stale = baseline.partition([moved], root=tmp_path)
        assert new == [moved]
        assert matched == []
        assert [e.path for e in stale] == ["src/repro/serving/old.py"]

    def test_fallback_requires_matching_symbol(self, tmp_path):
        baseline = Baseline([self.entry()])
        other = make_finding(
            path="src/repro/serving/renamed.py", symbol="X.other",
        )
        new, matched, stale = baseline.partition([other], root=tmp_path)
        assert new == [other] and matched == []


class TestBaselinePersistence:
    def test_round_trip(self, tmp_path):
        baseline = Baseline([
            BaselineEntry(
                rule="inference-dtype", path="a.py", symbol="f",
                justification="stats path", count=2,
            ),
        ])
        target = tmp_path / "lint_baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == baseline.entries

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_unsupported_version_rejected(self, tmp_path):
        target = tmp_path / "lint_baseline.json"
        target.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(target)

    def test_from_findings_preserves_justifications(self):
        previous = Baseline([BaselineEntry(
            rule="inference-dtype", path="a.py", symbol="f",
            justification="deliberate float64",
        )])
        updated = Baseline.from_findings(
            [make_finding(path="a.py", symbol="f"),
             make_finding(path="b.py", symbol="g")],
            previous=previous,
        )
        by_path = {entry.path: entry for entry in updated}
        assert by_path["a.py"].justification == "deliberate float64"
        assert by_path["b.py"].justification == TODO_JUSTIFICATION

    def test_from_findings_drops_stale_entries(self):
        previous = Baseline([BaselineEntry(
            rule="inference-dtype", path="gone.py", symbol="f",
        )])
        updated = Baseline.from_findings([], previous=previous)
        assert len(updated) == 0


class TestCli:
    """scripts/run_lint.py drives the library; exit code is the verdict."""

    def run(self, *args, cwd=None):
        return subprocess.run(
            [sys.executable, str(RUN_LINT), *args],
            capture_output=True, text=True, cwd=cwd or REPO_ROOT,
        )

    def test_list_rules(self):
        proc = self.run("--list-rules")
        assert proc.returncode == 0
        for rule in ("thread-local-state", "lock-discipline",
                     "probe-mode-discipline", "inference-dtype",
                     "future-hygiene", "pytest-marker-declared"):
            assert rule in proc.stdout

    def test_dirty_file_exits_nonzero_with_diagnostic(self, tmp_path):
        dirty = tmp_path / "src" / "repro" / "serving" / "dirty.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text(
            "import numpy as np\n\n"
            "def hot(x):\n"
            "    return np.asarray(x, dtype=np.float64)\n"
        )
        proc = self.run(str(dirty), "--no-baseline")
        assert proc.returncode == 1
        # file:line: rule: message diagnostic format
        assert f"{dirty}:4: inference-dtype:" in proc.stdout.replace(
            str(dirty.resolve()), str(dirty)
        ) or ":4: inference-dtype:" in proc.stdout

    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "src" / "repro" / "serving" / "clean.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("VALUE = 1\n")
        proc = self.run(str(clean), "--no-baseline")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_json_format(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        proc = self.run(str(clean), "--no-baseline", "--format", "json")
        payload = json.loads(proc.stdout)
        assert payload["summary"]["ok"] is True

    def test_baseline_update_then_gate_passes(self, tmp_path):
        dirty = tmp_path / "src" / "repro" / "serving" / "dirty.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text(
            "import numpy as np\n"
            "def hot(x):\n"
            "    return np.asarray(x, dtype=np.float64)\n"
        )
        baseline = tmp_path / "lint_baseline.json"
        update = self.run(str(dirty), "--baseline", str(baseline),
                          "--baseline-update")
        assert update.returncode == 0
        payload = json.loads(baseline.read_text())
        assert payload["entries"][0]["justification"] == TODO_JUSTIFICATION

        gated = self.run(str(dirty), "--baseline", str(baseline))
        assert gated.returncode == 0, gated.stdout + gated.stderr

    def test_bench_output_written(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        bench = tmp_path / "BENCH_lint.json"
        proc = self.run(str(clean), "--no-baseline",
                        "--bench-output", str(bench))
        assert proc.returncode == 0
        metrics = json.loads(bench.read_text())
        assert metrics["lint_files_count"] == 1
        assert metrics["lint_wall_seconds"] > 0
        assert "lint_files_per_second" in metrics
