"""The four interprocedural rules, on fixtures and on seeded real sources.

The seeding tests are the acceptance criterion for the call-graph layer:
re-introducing the PR 8 unbounded-``wait`` deadlock (reachable under a
held lock through two call hops) and a synthetic AB/BA lock inversion
into copies of the real sources must make ``scripts/run_lint.py`` exit
non-zero with a full caller→…→site witness chain.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import LintConfig, lint_sources

REPO_ROOT = Path(__file__).resolve().parents[2]
RUN_LINT = REPO_ROOT / "scripts" / "run_lint.py"


def read(rel):
    return (REPO_ROOT / rel).read_text(encoding="utf-8")


def lint(files, rule, **options):
    config = LintConfig(
        enabled=[rule], project_root=REPO_ROOT,
        rule_options={rule: options} if options else {},
    )
    return lint_sources(
        {path: textwrap.dedent(source) for path, source in files.items()},
        config=config,
    )


class TestBlockingUnderLock:
    SCHEDULER = """
        import threading

        class Sched:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Condition(self._lock)

            def run(self):
                with self._lock:
                    self._drain()

            def _drain(self):
                self._park()

            def _park(self):
                self._ready.wait({wait_args})
        """

    def test_direct_blocking_site_under_lock(self):
        findings = lint({
            "src/repro/pkg/a.py": """
                import threading

                _LOCK = threading.Lock()

                def pump(conn):
                    with _LOCK:
                        return conn.recv()
                """,
        }, "blocking-under-lock")
        assert len(findings) == 1
        assert findings[0].symbol == "pump"
        assert "conn.recv() blocks without a timeout" in findings[0].message

    def test_two_hop_chain_reported_with_witness(self):
        findings = lint(
            {"src/repro/pkg/a.py": self.SCHEDULER.format(wait_args="")},
            "blocking-under-lock",
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.symbol == "Sched.run -> Sched._park"
        assert "repro.pkg.a:Sched._lock" in finding.message
        rendered = finding.describe()
        # Full chain: run (holding the lock) -> _drain -> _park -> wait().
        assert "calls _drain() holding" in rendered
        assert "_park" in rendered
        assert "wait() without timeout" in rendered

    def test_bounded_wait_is_clean(self):
        findings = lint(
            {"src/repro/pkg/a.py": self.SCHEDULER.format(wait_args="timeout=1.0")},
            "blocking-under-lock",
        )
        assert findings == []

    def test_suppression_comment_silences_the_call_site(self):
        source = self.SCHEDULER.format(wait_args="").replace(
            "self._drain()",
            "self._drain()  # repro: disable=blocking-under-lock",
            1,
        )
        findings = lint({"src/repro/pkg/a.py": source}, "blocking-under-lock")
        assert findings == []


class TestLockOrder:
    INVERTED = """
        import threading

        class Alpha:
            def __init__(self, beta: "Beta"):
                self._lock = threading.Lock()
                self._beta = beta

            def forward(self):
                with self._lock:
                    self._beta.touch()

            def touch(self):
                with self._lock:
                    pass

        class Beta:
            def __init__(self):
                self._lock = threading.Lock()
                self._alpha = Alpha(self)

            def touch(self):
                with self._lock:
                    pass

            def reverse(self):
                with self._lock:
                    self._alpha.touch()
        """

    def test_ab_ba_inversion_reported_once_with_cycle_witness(self):
        findings = lint({"src/repro/pkg/locks.py": self.INVERTED}, "lock-order")
        assert len(findings) == 1
        finding = findings[0]
        assert "Alpha._lock" in finding.symbol
        assert "Beta._lock" in finding.symbol
        rendered = finding.describe()
        assert "while holding repro.pkg.locks:Alpha._lock" in rendered
        assert "while holding repro.pkg.locks:Beta._lock" in rendered

    def test_consistent_order_is_clean(self):
        consistent = self.INVERTED.replace(
            "def reverse(self):\n"
            "                with self._lock:\n"
            "                    self._alpha.touch()",
            "def reverse(self):\n"
            "                return None",
        )
        assert lint({"src/repro/pkg/locks.py": consistent}, "lock-order") == []


class TestServingGradLeak:
    NN = """
        class Encoder:
            def forward(self, x):
                return x
        """

    def service(self, body):
        return {
            "src/repro/nn/enc.py": self.NN,
            "src/repro/serving/api.py": textwrap.dedent("""
                from repro.nn.enc import Encoder
                from repro.nn.backprop import no_grad

                class Service:
                    def __init__(self):
                        self.enc = Encoder()

                """) + textwrap.indent(textwrap.dedent(body), "    "),
        }

    def test_public_entry_reaching_forward_is_flagged_once(self):
        findings = lint(self.service("""
            def infer(self, x):
                return self._helper(x)

            def _helper(self, x):
                return self.enc.forward(x)
            """), "serving-grad-leak")
        # One leak, one report: the private helper appears only as a hop.
        assert len(findings) == 1
        finding = findings[0]
        assert finding.symbol.startswith("Service.infer")
        assert "_helper" in finding.describe()

    def test_no_grad_on_the_chain_is_clean(self):
        findings = lint(self.service("""
            def infer(self, x):
                with no_grad():
                    return self.enc.forward(x)
            """), "serving-grad-leak")
        assert findings == []


class TestRouterExceptionTaxonomy:
    def router(self, lookup_handler=""):
        return {
            "src/repro/serving/errors.py": """
                class RejectedError(Exception):
                    pass

                class OverCapacityError(RejectedError):
                    pass
                """,
            "src/repro/serving/router.py": """
                from repro.serving.errors import OverCapacityError, RejectedError

                class Router:
                    def submit(self, key):
                        if key is None:
                            raise OverCapacityError("full")
                        %s

                    def _lookup(self, key):
                        if key == "missing":
                            raise KeyError(key)
                        return key
                """ % (lookup_handler or "return self._lookup(key)"),
        }

    def test_undocumented_escape_is_flagged_with_chain(self):
        findings = lint(self.router(), "router-exception-taxonomy")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.symbol == "Router.submit -> KeyError"
        # RejectedError subclasses are allowed; only KeyError escapes.
        assert "OverCapacityError" not in finding.symbol
        assert "_lookup" in finding.describe()

    def test_wrapping_into_the_taxonomy_is_clean(self):
        wrapped = (
            "try:\n"
            "                            return self._lookup(key)\n"
            "                        except KeyError as exc:\n"
            "                            raise RejectedError(str(exc))"
        )
        findings = lint(self.router(wrapped), "router-exception-taxonomy")
        assert findings == []


class TestLockDisciplineInterprocedural:
    BOX = (
        "import threading\n"
        "\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []\n"
        "\n"
        "    def _append_locked(self, item):\n"
        "        self._items.append(item)\n"
        "\n"
        "    def add(self, item):\n"
        "        with self._lock:\n"
        "            self._append_locked(item)\n"
        "{extra}"
    )

    def test_locked_suffix_callee_requires_a_held_lock(self):
        source = self.BOX.format(extra=(
            "\n    def bad_add(self, item):\n"
            "        self._append_locked(item)\n"
        ))
        findings = lint({"src/repro/pkg/box.py": source}, "lock-discipline")
        assert any(
            "_append_locked" in f.message and "bad_add" in f.symbol
            for f in findings
        )

    def test_all_callers_locked_is_clean(self):
        findings = lint(
            {"src/repro/pkg/box.py": self.BOX.format(extra="")},
            "lock-discipline",
        )
        assert findings == []


class TestSeededRealSources:
    """Acceptance: seeded historical bugs fail the CLI gate with chains."""

    def run_gate(self, seeded_path, rule):
        return subprocess.run(
            [sys.executable, str(RUN_LINT), str(seeded_path),
             "--no-baseline", "--rules", rule],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )

    def test_pr8_unbounded_wait_two_hops_under_lock(self, tmp_path):
        # PR 8's scheduler deadlock, but buried two private helpers deep:
        # _run holds self._lock and calls _drain_quiet -> _park_for_work,
        # which waits with no timeout.  Only the interprocedural rule can
        # connect the lock at the top to the park at the bottom.
        source = read("src/repro/serving/service.py")
        helpers = (
            "    def _drain_quiet(self) -> None:\n"
            "        self._park_for_work()\n"
            "\n"
            "    def _park_for_work(self) -> None:\n"
            "        self._work_ready.wait()\n"
            "\n"
            "    def _run(self) -> None:\n"
        )
        seeded = source.replace("    def _run(self) -> None:\n", helpers, 1)
        seeded = seeded.replace(
            "                    self._work_ready.wait("
            "timeout=SCHEDULER_HEARTBEAT_SECONDS)",
            "                    self._drain_quiet()",
            1,
        )
        assert seeded != source
        target = tmp_path / "src" / "repro" / "serving" / "service.py"
        target.parent.mkdir(parents=True)
        target.write_text(seeded)

        proc = self.run_gate(target, "blocking-under-lock")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert ": blocking-under-lock: " in proc.stdout
        # The diagnostic walks the whole chain, not just the wait site.
        assert "calls _drain_quiet() holding" in proc.stdout
        assert "_park_for_work" in proc.stdout
        assert "wait() without timeout" in proc.stdout

    def test_synthetic_ab_ba_inversion_in_cluster(self, tmp_path):
        # ClusterStats locks then calls into ReplicaPool (stats -> pool)
        # while ReplicaPool locks then calls back into ClusterStats
        # (pool -> stats): a classic AB/BA inversion across two classes
        # that already share object references in the real code.
        source = read("src/repro/serving/cluster.py")
        stats_seed = (
            "    def seeded_touch(self) -> None:\n"
            "        with self._lock:\n"
            "            pass\n"
            "\n"
            "    def seeded_reverse(self) -> None:\n"
            "        with self._lock:\n"
            "            self._pool.seeded_drain()\n"
            "\n"
            '    def __init__(self, pool: "ReplicaPool") -> None:\n'
        )
        seeded = source.replace(
            '    def __init__(self, pool: "ReplicaPool") -> None:\n',
            stats_seed, 1,
        )
        pool_seed = (
            "    def seeded_drain(self) -> None:\n"
            "        with self._lock:\n"
            "            pass\n"
            "\n"
            "    def seeded_forward(self) -> None:\n"
            "        self._stats_ref = ClusterStats(self)\n"
            "        with self._lock:\n"
            "            self._stats_ref.seeded_touch()\n"
            "\n"
            "    def __len__(self) -> int:\n"
        )
        pool_start = seeded.index("class ReplicaPool")
        insert_at = seeded.index("    def __len__(self) -> int:\n", pool_start)
        seeded = (
            seeded[:insert_at]
            + pool_seed
            + seeded[insert_at + len("    def __len__(self) -> int:\n"):]
        )
        assert seeded != source
        target = tmp_path / "src" / "repro" / "serving" / "cluster.py"
        target.parent.mkdir(parents=True)
        target.write_text(seeded)

        proc = self.run_gate(target, "lock-order")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert ": lock-order: " in proc.stdout
        assert "lock-order inversion" in proc.stdout
        assert "ClusterStats._lock" in proc.stdout
        assert "ReplicaPool._lock" in proc.stdout
