"""Unit tests for the approximate-vs-exact recall metric."""

import pytest

from repro.eval import recall_at_k
from repro.linking.candidates import RetrievalResult


class TestRecallAtK:
    def test_perfect_overlap(self):
        exact = [["a", "b", "c"], ["d", "e"]]
        assert recall_at_k(exact, exact) == 1.0

    def test_order_insensitive(self):
        assert recall_at_k([["c", "a", "b"]], [["a", "b", "c"]]) == 1.0

    def test_partial_overlap_averages_over_queries(self):
        approx = [["a", "b"], ["x", "y"]]
        exact = [["a", "b"], ["d", "e"]]
        assert recall_at_k(approx, exact) == pytest.approx(0.5)

    def test_cutoff_k_truncates_both_sides(self):
        approx = [["a", "z", "b"]]
        exact = [["a", "b", "z"]]
        # At k=2 the exact set is {a, b}; approx returns {a, z} -> 0.5.
        assert recall_at_k(approx, exact, k=2) == pytest.approx(0.5)
        assert recall_at_k(approx, exact) == 1.0

    def test_accepts_retrieval_results(self):
        approx = [RetrievalResult(["a", "b"], [2.0, 1.0])]
        exact = [RetrievalResult(["a", "c"], [2.0, 1.5])]
        assert recall_at_k(approx, exact) == pytest.approx(0.5)

    def test_empty_exact_rows_are_skipped(self):
        assert recall_at_k([["a"], []], [["a"], []]) == 1.0

    def test_all_empty_defines_recall_one(self):
        assert recall_at_k([], []) == 1.0
        assert recall_at_k([[]], [[]]) == 1.0

    def test_misaligned_lists_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k([["a"]], [])
