"""Unit tests for metrics, reporting and the experiment suite plumbing."""

import pytest

from repro.eval import (
    LinkingMetrics,
    accuracy_from_predictions,
    compute_metrics,
    evaluate_name_matching,
    format_metric_rows,
    format_table,
    macro_average,
    markdown_table,
)
from repro.linking.blink import LinkingPrediction


def prediction(gold, candidates, predicted):
    return LinkingPrediction(
        mention_id="m",
        gold_entity_id=gold,
        candidate_ids=candidates,
        predicted_entity_id=predicted,
    )


class TestMetrics:
    def test_perfect_predictions(self):
        predictions = [prediction("e1", ["e1", "e2"], "e1") for _ in range(4)]
        metrics = compute_metrics(predictions)
        assert metrics.recall == 100.0
        assert metrics.normalized_accuracy == 100.0
        assert metrics.unnormalized_accuracy == 100.0

    def test_unnormalized_is_product_of_recall_and_normalized(self):
        predictions = [
            prediction("e1", ["e1", "e2"], "e1"),   # retrieved + correct
            prediction("e1", ["e1", "e2"], "e2"),   # retrieved + wrong
            prediction("e1", ["e3", "e2"], "e3"),   # not retrieved
            prediction("e1", ["e1", "e2"], "e1"),   # retrieved + correct
        ]
        metrics = compute_metrics(predictions)
        assert metrics.recall == pytest.approx(75.0)
        assert metrics.normalized_accuracy == pytest.approx(100.0 * 2 / 3)
        assert metrics.unnormalized_accuracy == pytest.approx(50.0)
        assert metrics.unnormalized_accuracy == pytest.approx(
            metrics.recall * metrics.normalized_accuracy / 100.0
        )

    def test_empty_predictions(self):
        metrics = compute_metrics([])
        assert metrics.num_examples == 0
        assert metrics.unnormalized_accuracy == 0.0

    def test_unlabelled_predictions_ignored(self):
        predictions = [prediction(None, ["e1"], "e1"), prediction("e1", ["e1"], "e1")]
        assert compute_metrics(predictions).num_examples == 1

    def test_rounding(self):
        metrics = LinkingMetrics(33.3333, 66.6666, 22.2222, 3)
        rounded = metrics.rounded(1)
        assert rounded.recall == 33.3
        assert rounded.num_examples == 3

    def test_accuracy_from_predictions(self):
        assert accuracy_from_predictions(["a", "b"], ["a", "c"]) == 50.0
        with pytest.raises(ValueError):
            accuracy_from_predictions(["a"], ["a", "b"])

    def test_macro_average(self):
        first = LinkingMetrics(50.0, 50.0, 25.0, 10)
        second = LinkingMetrics(100.0, 100.0, 100.0, 10)
        average = macro_average([first, second])
        assert average.recall == 75.0
        assert average.num_examples == 20
        assert macro_average([]).num_examples == 0


class TestNameMatchingEvaluation:
    def test_returns_unnormalized_only(self, tiny_corpus):
        domain = "lego"
        mentions = tiny_corpus.mentions(domain)[:30]
        metrics = evaluate_name_matching(tiny_corpus.entities(domain), mentions)
        assert metrics.recall == 0.0
        assert 0.0 <= metrics.unnormalized_accuracy <= 100.0
        assert metrics.num_examples == 30

    def test_empty_mentions(self, tiny_corpus):
        metrics = evaluate_name_matching(tiny_corpus.entities("lego"), [])
        assert metrics.num_examples == 0


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"method": "blink", "score": 12.345}, {"method": "meta", "score": 3.0}]
        text = format_table(rows, title="Demo")
        assert "Demo" in text
        assert "12.35" in text
        assert text.count("\n") >= 3

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="Nothing")

    def test_format_metric_rows(self):
        text = format_metric_rows({"blink": {"recall": 50.0, "normalized_accuracy": 25.0,
                                             "unnormalized_accuracy": 12.5}})
        assert "blink" in text and "50.00" in text

    def test_markdown_table(self):
        rows = [{"a": 1, "b": 2.5}]
        text = markdown_table(rows)
        assert text.startswith("| a | b |")
        assert "| 1 | 2.50 |" in text
        assert markdown_table([]) == "(empty)"
