"""Unit tests for the autodiff Tensor engine."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, no_grad, stack_tensors, tensor, zeros


def numeric_gradient(func, value, eps=1e-6):
    """Central-difference gradient of a scalar function of one array."""
    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = func(value)
        flat[i] = original - eps
        lower = func(value)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


class TestTensorBasics:
    def test_construction_casts_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"
        assert t.shape == (3,)

    def test_requires_grad_flag(self):
        t = Tensor([1.0], requires_grad=True)
        assert t.requires_grad
        assert Tensor([1.0]).requires_grad is False

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestArithmeticGradients:
    def test_add_broadcast_gradient(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4,)), requires_grad=True)
        out = (a + b).sum()
        out.backward()
        assert np.allclose(a.grad, np.ones((3, 4)))
        assert np.allclose(b.grad, np.full((4,), 3.0))

    def test_mul_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4.0, 5.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        a_val = rng.uniform(1.0, 2.0, size=(3, 3))
        b_val = rng.uniform(1.0, 2.0, size=(3, 3))
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        (a / b).sum().backward()
        num_a = numeric_gradient(lambda v: float((v / b_val).sum()), a_val.copy())
        num_b = numeric_gradient(lambda v: float((a_val / v).sum()), b_val.copy())
        assert np.allclose(a.grad, num_a, atol=1e-5)
        assert np.allclose(b.grad, num_b, atol=1e-5)

    def test_pow_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        assert np.allclose(a.grad, 3 * np.array([2.0, 3.0]) ** 2)

    def test_rsub_and_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (10.0 - a).backward()
        assert np.allclose(a.grad, [-1.0])
        b = Tensor([2.0], requires_grad=True)
        (10.0 / b).backward()
        assert np.allclose(b.grad, [-10.0 / 4.0])

    def test_matmul_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        (a @ b).sum().backward()
        num_a = numeric_gradient(lambda v: float((v @ b_val).sum()), a_val.copy())
        num_b = numeric_gradient(lambda v: float((a_val @ v).sum()), b_val.copy())
        assert np.allclose(a.grad, num_a, atol=1e-5)
        assert np.allclose(b.grad, num_b, atol=1e-5)

    def test_batched_matmul_gradient_shapes(self):
        rng = np.random.default_rng(4)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (4, 5)

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([1.0], requires_grad=True)
        out = a * 2 + a * 3
        out.backward()
        assert np.allclose(a.grad, [5.0])


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "method, reference",
        [
            ("exp", np.exp),
            ("log", np.log),
            ("tanh", np.tanh),
            ("sigmoid", lambda v: 1 / (1 + np.exp(-v))),
            ("relu", lambda v: np.maximum(v, 0)),
        ],
    )
    def test_unary_matches_numeric(self, method, reference):
        rng = np.random.default_rng(5)
        value = rng.uniform(0.2, 1.5, size=(4, 3))
        t = Tensor(value.copy(), requires_grad=True)
        getattr(t, method)().sum().backward()
        numeric = numeric_gradient(lambda v: float(reference(v).sum()), value.copy())
        assert np.allclose(t.grad, numeric, atol=1e-4)

    def test_clip_gradient_zero_outside_range(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])

    def test_abs_gradient_is_sign(self):
        t = Tensor([-2.0, 3.0], requires_grad=True)
        t.abs().sum().backward()
        assert np.allclose(t.grad, [-1.0, 1.0])

    def test_maximum_routes_gradient(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        a.maximum(b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.sum(axis=1, keepdims=True).sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        t = Tensor(np.ones((2, 5)), requires_grad=True)
        t.mean().backward()
        assert np.allclose(t.grad, np.full((2, 5), 0.1))

    def test_max_axis_gradient(self):
        t = Tensor(np.array([[1.0, 3.0], [5.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_reshape_roundtrips_gradient(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        (t.reshape(2, 3) * 2).sum().backward()
        assert np.allclose(t.grad, np.full(6, 2.0))

    def test_transpose_gradient(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.transpose().sum().backward()
        assert t.grad.shape == (2, 3)

    def test_getitem_gradient_scatters(self):
        t = Tensor(np.arange(5.0), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(t.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_concatenate_gradient_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)

    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack_tensors([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, np.ones(3))
        assert np.allclose(b.grad, np.ones(3))


class TestGradMode:
    def test_no_grad_disables_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        with no_grad():
            pass
        t = Tensor([1.0], requires_grad=True)
        assert (t * 2).requires_grad

    def test_zeros_helper(self):
        z = zeros((2, 2), requires_grad=True)
        assert z.shape == (2, 2)
        assert z.requires_grad

    def test_tensor_helper(self):
        assert tensor([1.0, 2.0]).shape == (2,)
