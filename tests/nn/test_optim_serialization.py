"""Unit tests for optimisers, LR schedules and checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    LinearWarmupSchedule,
    Linear,
    Module,
    Tensor,
    clip_grad_norm,
    functional as F,
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
    save_training_checkpoint,
)


def quadratic_loss(parameter):
    return ((parameter - 3.0) * (parameter - 3.0)).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Linear(1, 1, bias=False, rng=np.random.default_rng(0)).weight
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(param)
            param.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.allclose(param.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            layer = Linear(1, 1, bias=False, rng=np.random.default_rng(0))
            optimizer = SGD([layer.weight], lr=0.02, momentum=momentum)
            for _ in range(30):
                loss = quadratic_loss(layer.weight)
                layer.zero_grad()
                loss.backward()
                optimizer.step()
            return abs(float(layer.weight.data.reshape(())) - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_parameters(self):
        layer = Linear(4, 4, bias=False, rng=np.random.default_rng(1))
        optimizer = SGD([layer.weight], lr=0.1, weight_decay=0.5)
        before = np.abs(layer.weight.data).sum()
        # gradient of zero loss -> only weight decay acts
        layer.weight.grad = np.zeros_like(layer.weight.data)
        optimizer.step()
        assert np.abs(layer.weight.data).sum() < before

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        layer = Linear(1, 1)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        layer = Linear(1, 1, bias=False, rng=np.random.default_rng(2))
        optimizer = Adam([layer.weight], lr=0.2)
        for _ in range(150):
            loss = quadratic_loss(layer.weight)
            layer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.allclose(layer.weight.data, 3.0, atol=1e-2)

    def test_skips_parameters_without_grad(self):
        layer = Linear(2, 2, rng=np.random.default_rng(3))
        optimizer = Adam(layer.parameters(), lr=0.1)
        before = layer.weight.data.copy()
        optimizer.step()
        assert np.allclose(layer.weight.data, before)

    def test_step_count_bias_correction(self):
        layer = Linear(1, 1, bias=False, rng=np.random.default_rng(4))
        optimizer = Adam([layer.weight], lr=0.1)
        layer.weight.grad = np.ones_like(layer.weight.data)
        optimizer.step()
        # After one step with unit gradient, update magnitude ~= lr.
        assert abs(float(layer.weight.grad.reshape(()))) == 1.0
        assert optimizer._step_count == 1


class TestGradClippingAndSchedule:
    def test_clip_grad_norm_scales_down(self):
        layer = Linear(3, 3, bias=False, rng=np.random.default_rng(5))
        layer.weight.grad = np.full(layer.weight.shape, 10.0)
        norm = clip_grad_norm([layer.weight], max_norm=1.0)
        assert norm > 1.0
        assert np.linalg.norm(layer.weight.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_noop_below_threshold(self):
        layer = Linear(2, 2, bias=False, rng=np.random.default_rng(6))
        layer.weight.grad = np.full(layer.weight.shape, 0.01)
        before = layer.weight.grad.copy()
        clip_grad_norm([layer.weight], max_norm=10.0)
        assert np.allclose(layer.weight.grad, before)

    def test_clip_handles_missing_grads(self):
        layer = Linear(2, 2)
        assert clip_grad_norm(layer.parameters(), 1.0) == 0.0

    def test_warmup_schedule_shape(self):
        layer = Linear(1, 1)
        optimizer = SGD(layer.parameters(), lr=1.0)
        schedule = LinearWarmupSchedule(optimizer, warmup_steps=5, total_steps=10)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.2)
        assert lrs[4] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)

    def test_schedule_invalid_total(self):
        layer = Linear(1, 1)
        optimizer = SGD(layer.parameters(), lr=1.0)
        with pytest.raises(ValueError):
            LinearWarmupSchedule(optimizer, warmup_steps=1, total_steps=0)


class CheckpointModel(Module):
    def __init__(self, seed=0):
        super().__init__()
        self.layer = Linear(4, 4, rng=np.random.default_rng(seed))

    def forward(self, x):
        return self.layer(x)


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = CheckpointModel(seed=1)
        path = save_checkpoint(model, tmp_path / "model", metadata={"epoch": 3})
        restored = CheckpointModel(seed=2)
        metadata = load_checkpoint(restored, path)
        assert metadata == {"epoch": 3}
        assert np.allclose(model.layer.weight.data, restored.layer.weight.data)

    def test_save_appends_npz_suffix(self, tmp_path):
        model = CheckpointModel()
        path = save_checkpoint(model, tmp_path / "checkpoint")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_accepts_path_without_suffix(self, tmp_path):
        model = CheckpointModel()
        save_checkpoint(model, tmp_path / "weights")
        other = CheckpointModel(seed=9)
        load_checkpoint(other, tmp_path / "weights")
        assert np.allclose(model.layer.weight.data, other.layer.weight.data)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(CheckpointModel(), tmp_path / "missing.npz")


def run_steps(model, optimizer, steps, start=0):
    for index in range(start, start + steps):
        x = Tensor(np.full((2, 4), 0.1 * (index + 1)))
        loss = (model(x) * model(x)).sum()
        model.zero_grad()
        loss.backward()
        optimizer.step()


class TestOptimizerStateDicts:
    def test_adam_state_roundtrip_is_bit_identical(self):
        model_a, model_b = CheckpointModel(seed=1), CheckpointModel(seed=1)
        opt_a = Adam(model_a.parameters(), lr=0.05)
        opt_b = Adam(model_b.parameters(), lr=0.05)
        run_steps(model_a, opt_a, 3)
        model_b.load_state_dict(model_a.state_dict())
        opt_b.load_state_dict(opt_a.state_dict())
        run_steps(model_a, opt_a, 2, start=3)
        run_steps(model_b, opt_b, 2, start=3)
        assert np.array_equal(model_a.flatten_parameters(), model_b.flatten_parameters())

    def test_sgd_state_roundtrip(self):
        model = CheckpointModel(seed=2)
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        run_steps(model, optimizer, 2)
        state = optimizer.state_dict()
        fresh = SGD(model.parameters(), lr=0.1, momentum=0.9)
        fresh.load_state_dict(state)
        assert all(
            np.array_equal(a, b) for a, b in zip(fresh._velocity, optimizer._velocity)
        )

    def test_buffer_shape_mismatch_rejected(self):
        model = CheckpointModel(seed=3)
        optimizer = Adam(model.parameters(), lr=0.1)
        state = optimizer.state_dict()
        state["m"][0] = np.zeros(7)
        with pytest.raises(ValueError):
            Adam(model.parameters(), lr=0.1).load_state_dict(state)

    def test_schedule_state_roundtrip(self):
        layer = Linear(1, 1)
        optimizer = SGD(layer.parameters(), lr=1.0)
        schedule = LinearWarmupSchedule(optimizer, warmup_steps=5, total_steps=10)
        for _ in range(3):
            schedule.step()
        fresh_optimizer = SGD(layer.parameters(), lr=1.0)
        fresh = LinearWarmupSchedule(fresh_optimizer, warmup_steps=1, total_steps=2)
        fresh.load_state_dict(schedule.state_dict())
        assert fresh_optimizer.lr == optimizer.lr
        assert fresh.step() == schedule.step()


class TestTrainingCheckpoint:
    def test_roundtrip_restores_optimizer_and_metadata(self, tmp_path):
        model = CheckpointModel(seed=4)
        optimizer = Adam(model.parameters(), lr=0.05)
        run_steps(model, optimizer, 3)
        path = save_training_checkpoint(
            model, tmp_path / "train", optimizer=optimizer, metadata={"epoch": 3}
        )
        restored_model = CheckpointModel(seed=5)
        restored_optimizer = Adam(restored_model.parameters(), lr=0.9)
        metadata = load_training_checkpoint(restored_model, path, optimizer=restored_optimizer)
        assert metadata == {"epoch": 3}
        assert restored_optimizer.lr == optimizer.lr
        assert restored_optimizer._step_count == optimizer._step_count
        assert all(np.array_equal(a, b) for a, b in zip(restored_optimizer._m, optimizer._m))
        assert np.array_equal(model.flatten_parameters(), restored_model.flatten_parameters())

    def test_missing_optimizer_state_raises(self, tmp_path):
        model = CheckpointModel(seed=6)
        path = save_training_checkpoint(model, tmp_path / "weights-only")
        with pytest.raises(ValueError, match="no optimizer state"):
            load_training_checkpoint(
                CheckpointModel(seed=6), path, optimizer=Adam(model.parameters(), lr=0.1)
            )

    def test_optimizer_section_hidden_from_metadata(self, tmp_path):
        model = CheckpointModel(seed=7)
        optimizer = Adam(model.parameters(), lr=0.1)
        path = save_training_checkpoint(model, tmp_path / "train", optimizer=optimizer)
        metadata = load_training_checkpoint(CheckpointModel(seed=7), path)
        assert "__optimizer__" not in metadata
