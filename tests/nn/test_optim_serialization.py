"""Unit tests for optimisers, LR schedules and checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    LinearWarmupSchedule,
    Linear,
    Module,
    Tensor,
    clip_grad_norm,
    functional as F,
    load_checkpoint,
    save_checkpoint,
)


def quadratic_loss(parameter):
    return ((parameter - 3.0) * (parameter - 3.0)).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Linear(1, 1, bias=False, rng=np.random.default_rng(0)).weight
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(param)
            param.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.allclose(param.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            layer = Linear(1, 1, bias=False, rng=np.random.default_rng(0))
            optimizer = SGD([layer.weight], lr=0.02, momentum=momentum)
            for _ in range(30):
                loss = quadratic_loss(layer.weight)
                layer.zero_grad()
                loss.backward()
                optimizer.step()
            return abs(float(layer.weight.data.reshape(())) - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_parameters(self):
        layer = Linear(4, 4, bias=False, rng=np.random.default_rng(1))
        optimizer = SGD([layer.weight], lr=0.1, weight_decay=0.5)
        before = np.abs(layer.weight.data).sum()
        # gradient of zero loss -> only weight decay acts
        layer.weight.grad = np.zeros_like(layer.weight.data)
        optimizer.step()
        assert np.abs(layer.weight.data).sum() < before

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        layer = Linear(1, 1)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        layer = Linear(1, 1, bias=False, rng=np.random.default_rng(2))
        optimizer = Adam([layer.weight], lr=0.2)
        for _ in range(150):
            loss = quadratic_loss(layer.weight)
            layer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.allclose(layer.weight.data, 3.0, atol=1e-2)

    def test_skips_parameters_without_grad(self):
        layer = Linear(2, 2, rng=np.random.default_rng(3))
        optimizer = Adam(layer.parameters(), lr=0.1)
        before = layer.weight.data.copy()
        optimizer.step()
        assert np.allclose(layer.weight.data, before)

    def test_step_count_bias_correction(self):
        layer = Linear(1, 1, bias=False, rng=np.random.default_rng(4))
        optimizer = Adam([layer.weight], lr=0.1)
        layer.weight.grad = np.ones_like(layer.weight.data)
        optimizer.step()
        # After one step with unit gradient, update magnitude ~= lr.
        assert abs(float(layer.weight.grad.reshape(()))) == 1.0
        assert optimizer._step_count == 1


class TestGradClippingAndSchedule:
    def test_clip_grad_norm_scales_down(self):
        layer = Linear(3, 3, bias=False, rng=np.random.default_rng(5))
        layer.weight.grad = np.full(layer.weight.shape, 10.0)
        norm = clip_grad_norm([layer.weight], max_norm=1.0)
        assert norm > 1.0
        assert np.linalg.norm(layer.weight.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_noop_below_threshold(self):
        layer = Linear(2, 2, bias=False, rng=np.random.default_rng(6))
        layer.weight.grad = np.full(layer.weight.shape, 0.01)
        before = layer.weight.grad.copy()
        clip_grad_norm([layer.weight], max_norm=10.0)
        assert np.allclose(layer.weight.grad, before)

    def test_clip_handles_missing_grads(self):
        layer = Linear(2, 2)
        assert clip_grad_norm(layer.parameters(), 1.0) == 0.0

    def test_warmup_schedule_shape(self):
        layer = Linear(1, 1)
        optimizer = SGD(layer.parameters(), lr=1.0)
        schedule = LinearWarmupSchedule(optimizer, warmup_steps=5, total_steps=10)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.2)
        assert lrs[4] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)

    def test_schedule_invalid_total(self):
        layer = Linear(1, 1)
        optimizer = SGD(layer.parameters(), lr=1.0)
        with pytest.raises(ValueError):
            LinearWarmupSchedule(optimizer, warmup_steps=1, total_steps=0)


class CheckpointModel(Module):
    def __init__(self, seed=0):
        super().__init__()
        self.layer = Linear(4, 4, rng=np.random.default_rng(seed))

    def forward(self, x):
        return self.layer(x)


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = CheckpointModel(seed=1)
        path = save_checkpoint(model, tmp_path / "model", metadata={"epoch": 3})
        restored = CheckpointModel(seed=2)
        metadata = load_checkpoint(restored, path)
        assert metadata == {"epoch": 3}
        assert np.allclose(model.layer.weight.data, restored.layer.weight.data)

    def test_save_appends_npz_suffix(self, tmp_path):
        model = CheckpointModel()
        path = save_checkpoint(model, tmp_path / "checkpoint")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_accepts_path_without_suffix(self, tmp_path):
        model = CheckpointModel()
        save_checkpoint(model, tmp_path / "weights")
        other = CheckpointModel(seed=9)
        load_checkpoint(other, tmp_path / "weights")
        assert np.allclose(model.layer.weight.data, other.layer.weight.data)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(CheckpointModel(), tmp_path / "missing.npz")
