"""Unit tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


class TestActivations:
    def test_relu_clamps_negative(self):
        out = F.relu(Tensor([-1.0, 2.0]))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_gelu_midpoint(self):
        out = F.gelu(Tensor([0.0]))
        assert out.data[0] == pytest.approx(0.0, abs=1e-8)

    def test_gelu_close_to_identity_for_large_values(self):
        out = F.gelu(Tensor([10.0]))
        assert out.data[0] == pytest.approx(10.0, abs=1e-3)

    def test_sigmoid_range(self):
        out = F.sigmoid(Tensor(np.linspace(-5, 5, 11)))
        assert np.all(out.data > 0) and np.all(out.data < 1)


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self):
        out = F.softmax(Tensor(np.random.default_rng(0).normal(size=(4, 7))))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_invariant_to_shift(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(logits))
        b = F.softmax(Tensor(logits + 100.0))
        assert np.allclose(a.data, b.data)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(3, 5)))
        assert np.allclose(F.log_softmax(logits).data, np.log(F.softmax(logits).data))

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, [0, 1])
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform_is_log_classes(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.cross_entropy(logits, [0, 3])
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_gradient_matches_softmax_minus_onehot(self):
        rng = np.random.default_rng(2)
        logits_val = rng.normal(size=(3, 4))
        logits = Tensor(logits_val.copy(), requires_grad=True)
        targets = np.array([1, 0, 3])
        F.cross_entropy(logits, targets, reduction="sum").backward()
        probs = np.exp(logits_val - logits_val.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = probs - F.one_hot(targets, 4)
        assert np.allclose(logits.grad, expected, atol=1e-8)

    def test_sample_weights_scale_loss(self):
        logits = Tensor(np.zeros((2, 3)))
        unweighted = F.cross_entropy(logits, [0, 1], reduction="sum")
        weighted = F.cross_entropy(logits, [0, 1], reduction="sum", sample_weights=[2.0, 0.0])
        assert weighted.item() == pytest.approx(unweighted.item())

    def test_reduction_none_returns_per_example(self):
        logits = Tensor(np.zeros((3, 2)))
        loss = F.cross_entropy(logits, [0, 1, 0], reduction="none")
        assert loss.shape == (3,)

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((1, 2))), [0], reduction="bogus")


class TestEmbeddingAndMasking:
    def test_embedding_lookup_values(self):
        weight = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = F.embedding(weight, np.array([1, 3]))
        assert np.allclose(out.data, [[3, 4, 5], [9, 10, 11]])

    def test_embedding_gradient_accumulates_per_row(self):
        weight = Tensor(np.zeros((4, 2)), requires_grad=True)
        F.embedding(weight, np.array([0, 0, 2])).sum().backward()
        assert np.allclose(weight.grad[0], [2.0, 2.0])
        assert np.allclose(weight.grad[2], [1.0, 1.0])
        assert np.allclose(weight.grad[1], [0.0, 0.0])

    def test_masked_fill_replaces_values(self):
        x = Tensor(np.ones((2, 2)))
        out = F.masked_fill(x, np.array([[True, False], [False, True]]), -9.0)
        assert np.allclose(out.data, [[-9.0, 1.0], [1.0, -9.0]])

    def test_one_hot_shape_and_values(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])


class TestDropoutAndNormalize:
    def test_dropout_noop_in_eval(self):
        x = Tensor(np.ones((5, 5)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_scales_surviving_units(self):
        rng = np.random.default_rng(3)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_normalize_unit_norm(self):
        x = Tensor(np.random.default_rng(4).normal(size=(3, 8)))
        out = F.normalize(x)
        assert np.allclose(np.linalg.norm(out.data, axis=-1), 1.0)

    def test_cosine_similarity_bounds(self):
        a = Tensor(np.random.default_rng(5).normal(size=(6, 4)))
        b = Tensor(np.random.default_rng(6).normal(size=(6, 4)))
        sims = F.cosine_similarity(a, b).data
        assert np.all(sims <= 1.0 + 1e-9) and np.all(sims >= -1.0 - 1e-9)

    def test_cosine_similarity_self_is_one(self):
        a = Tensor(np.random.default_rng(7).normal(size=(3, 4)))
        assert np.allclose(F.cosine_similarity(a, a).data, 1.0)
