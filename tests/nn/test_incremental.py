"""Tests for the incremental decoding primitives and the float32 compute path."""

import numpy as np
import pytest

from repro.nn import (
    MultiHeadAttention,
    PositionalEmbedding,
    Tensor,
    TransformerDecoder,
    TransformerEncoder,
    compute_dtype,
    get_compute_dtype,
    no_grad,
)
from repro.nn import functional as F
from repro.nn.attention import _causal_bias


@pytest.fixture(scope="module")
def decoder_setup():
    encoder = TransformerEncoder(
        vocab_size=60, model_dim=32, num_layers=2, num_heads=4, hidden_dim=64, max_length=14
    ).eval()
    decoder = TransformerDecoder(
        vocab_size=60, model_dim=32, num_layers=2, num_heads=4, hidden_dim=64, max_length=10
    ).eval()
    rng = np.random.default_rng(5)
    source = rng.integers(3, 60, size=(4, 12))
    source[0, 8:] = 0
    source[2, 5:] = 0
    target = rng.integers(3, 60, size=(4, 9))
    return encoder, decoder, source, target


class TestKVCachedDecoder:
    def test_single_token_steps_match_full_forward(self, decoder_setup):
        encoder, decoder, source, target = decoder_setup
        with no_grad():
            memory = encoder(source)
            mask = source == 0
            full = decoder(target, memory, memory_padding_mask=mask).data
            state = decoder.init_state(memory, mask)
            chunks = [decoder.forward_step(target[:, t:t + 1], state).data
                      for t in range(target.shape[1])]
        incremental = np.concatenate(chunks, axis=1)
        np.testing.assert_allclose(incremental, full, atol=1e-12)

    def test_multi_token_prefill_matches_full_forward(self, decoder_setup):
        encoder, decoder, source, target = decoder_setup
        with no_grad():
            memory = encoder(source)
            mask = source == 0
            full = decoder(target, memory, memory_padding_mask=mask).data
            state = decoder.init_state(memory, mask)
            prefill = decoder.forward_step(target[:, :5], state).data
            rest = [decoder.forward_step(target[:, t:t + 1], state).data
                    for t in range(5, target.shape[1])]
        incremental = np.concatenate([prefill] + rest, axis=1)
        np.testing.assert_allclose(incremental, full, atol=1e-12)

    def test_select_rows_drops_finished_sequences(self, decoder_setup):
        encoder, decoder, source, target = decoder_setup
        keep = np.array([True, False, True, True])
        with no_grad():
            memory = encoder(source)
            mask = source == 0
            full = decoder(target, memory, memory_padding_mask=mask).data
            state = decoder.init_state(memory, mask)
            decoder.forward_step(target[:, :4], state)
            state.select_rows(keep)
            assert state.batch == 3
            step = decoder.forward_step(target[keep][:, 4:5], state).data
        np.testing.assert_allclose(step, full[keep][:, 4:5], atol=1e-12)

    def test_cache_overflow_raises(self, decoder_setup):
        encoder, decoder, source, target = decoder_setup
        with no_grad():
            memory = encoder(source)
            state = decoder.init_state(memory, max_length=3)
            decoder.forward_step(target[:, :3], state)
            with pytest.raises(ValueError):
                decoder.forward_step(target[:, 3:4], state)

    def test_cross_attention_projected_once(self, decoder_setup):
        encoder, decoder, source, _ = decoder_setup
        with no_grad():
            memory = encoder(source)
            state = decoder.init_state(memory, source == 0)
        layer_state = state.layers[0]
        assert layer_state.cross_k.shape == (4, 4, source.shape[1], 8)
        assert state.memory_bias.shape == (4, 1, 1, source.shape[1])


class TestCausalBiasCache:
    def test_memoized_by_shape(self):
        first = _causal_bias(4, 4, 0, "float64")
        second = _causal_bias(4, 4, 0, "float64")
        assert first is second
        assert not first.flags.writeable

    def test_offset_masks_future_keys_only(self):
        bias = _causal_bias(2, 6, 4, "float64")[0, 0]
        # Query row 0 sits at absolute position 4: keys 0..4 visible.
        assert (bias[0, :5] == 0).all() and bias[0, 5] == -1e9
        assert (bias[1] == 0).all()

    def test_attention_matches_pre_memoization_semantics(self):
        attention = MultiHeadAttention(16, 2, dropout=0.0).eval()
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)))
        with no_grad():
            causal = attention(x, causal=True).data
            # Re-run: the memoized bias must not have been mutated.
            again = attention(x, causal=True).data
        np.testing.assert_array_equal(causal, again)


class TestPositionalEmbeddingOffset:
    def test_offset_slices_the_table(self):
        embedding = PositionalEmbedding(8, 4)
        with no_grad():
            full = embedding(8).data
            window = embedding(3, offset=2).data
        np.testing.assert_array_equal(window, full[2:5])

    def test_offset_bounds_checked(self):
        embedding = PositionalEmbedding(8, 4)
        with pytest.raises(ValueError):
            embedding(4, offset=5)
        with pytest.raises(ValueError):
            embedding(3, offset=-1)

    def test_training_path_still_differentiable(self):
        embedding = PositionalEmbedding(8, 4)
        out = embedding(4, offset=1)
        out.sum().backward()
        assert embedding.weight.grad is not None
        assert np.abs(embedding.weight.grad[1:5]).sum() > 0
        assert np.abs(embedding.weight.grad[0]).sum() == 0


class TestComputeDtype:
    def test_context_manager_nests_and_restores(self):
        assert get_compute_dtype() is None
        with compute_dtype("float32"):
            assert get_compute_dtype() == np.float32
            with compute_dtype(None):
                assert get_compute_dtype() is None
            assert get_compute_dtype() == np.float32
        assert get_compute_dtype() is None

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            compute_dtype("int32")

    def test_thread_local_does_not_leak_across_threads(self):
        import threading

        observed = {}

        def worker():
            observed["dtype"] = get_compute_dtype()

        with compute_dtype("float32"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert observed["dtype"] is None

    def test_inference_only_training_keeps_float64(self):
        weight = Tensor(np.ones((3, 3)), requires_grad=True)
        with compute_dtype("float32"):
            tracked = F.embedding(weight, np.array([0, 1]))
            assert tracked.data.dtype == np.float64
            with no_grad():
                cast = F.embedding(weight, np.array([0, 1]))
                assert cast.data.dtype == np.float32

    def test_cast_cache_reuses_and_invalidates(self):
        tensor = Tensor(np.ones((4,)))
        first = tensor.cast(np.float32)
        assert tensor.cast(np.float32) is first
        tensor.data = np.zeros((4,))
        second = tensor.cast(np.float32)
        assert second is not first
        np.testing.assert_array_equal(second, np.zeros((4,), dtype=np.float32))

    def test_encoder_forward_runs_float32_end_to_end(self, decoder_setup):
        encoder, _, source, _ = decoder_setup
        with no_grad():
            pooled64 = encoder.encode(source).data
            with compute_dtype("float32"):
                hidden32 = encoder(source).data
                pooled32 = encoder.encode(source).data
        assert hidden32.dtype == np.float32
        assert pooled32.dtype == np.float32
        np.testing.assert_allclose(pooled32, pooled64, atol=1e-4, rtol=1e-3)

    def test_decoder_logits_float32_close_to_float64(self, decoder_setup):
        encoder, decoder, source, target = decoder_setup
        with no_grad():
            memory = encoder(source)
            mask = source == 0
            logits64 = decoder(target, memory, memory_padding_mask=mask).data
            with compute_dtype("float32"):
                memory32 = encoder(source)
                state = decoder.init_state(memory32, mask)
                logits32 = decoder.forward_step(target, state).data
        assert logits32.dtype == np.float32
        np.testing.assert_allclose(logits32, logits64, atol=1e-2, rtol=1e-2)
