"""Unit tests for Module, layers, attention and transformer stacks."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    Parameter,
    Sequential,
    TransformerDecoder,
    TransformerEncoder,
    Tensor,
    functional as F,
)


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, rng=np.random.default_rng(0))
        self.second = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.second(F.relu(self.first(x)))


class TestModuleProtocol:
    def test_named_parameters_are_qualified(self):
        model = TinyModel()
        names = [name for name, _ in model.named_parameters()]
        assert "first.weight" in names and "second.bias" in names

    def test_num_parameters(self):
        model = TinyModel()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_roundtrip(self):
        model = TinyModel()
        other = TinyModel()
        other.load_state_dict(model.state_dict())
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_load_state_dict_strict_mismatch(self):
        model = TinyModel()
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(3)})

    def test_load_state_dict_shape_mismatch(self):
        model = TinyModel()
        state = model.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_flat_parameters_roundtrip(self):
        model = TinyModel()
        flat = model.flatten_parameters()
        model.assign_flat_parameters(flat * 0.0)
        assert all(np.allclose(p.data, 0.0) for p in model.parameters())
        model.assign_flat_parameters(flat)
        assert np.allclose(model.flatten_parameters(), flat)

    def test_assign_flat_parameters_wrong_size(self):
        model = TinyModel()
        with pytest.raises(ValueError):
            model.assign_flat_parameters(np.zeros(3))

    def test_gradient_vector_zero_when_no_grads(self):
        model = TinyModel()
        vec = model.gradient_vector()
        assert vec.shape[0] == model.num_parameters()
        assert np.allclose(vec, 0.0)

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert all(not child.training for child in model)

    def test_zero_grad_clears(self):
        model = TinyModel()
        out = model(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_module_list_indexing(self):
        layers = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(layers) == 2
        assert isinstance(layers[1], Linear)


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.ones((4, 5))))
        assert out.shape == (4, 3)

    def test_linear_no_bias(self):
        layer = Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup_and_padding(self):
        emb = Embedding(10, 4, padding_idx=0)
        assert np.allclose(emb.weight.data[0], 0.0)
        out = emb(np.array([[1, 2], [3, 0]]))
        assert out.shape == (2, 2, 4)

    def test_embedding_out_of_range_raises(self):
        emb = Embedding(10, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_layernorm_statistics(self):
        layer = LayerNorm(16)
        out = layer(Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(5, 16))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_eval_identity(self):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones((3, 3)))
        assert np.allclose(layer(x).data, 1.0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestAttentionAndTransformer:
    def test_attention_output_shape(self):
        attn = MultiHeadAttention(model_dim=16, num_heads=4)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)))
        assert attn(x).shape == (2, 5, 16)

    def test_attention_rejects_bad_head_count(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(model_dim=10, num_heads=3)

    def test_padding_mask_blocks_positions(self):
        attn = MultiHeadAttention(model_dim=8, num_heads=2, dropout=0.0)
        attn.eval()
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        mask = np.array([[False, False, True, True]])
        out_masked = attn(x, key_padding_mask=mask)
        # Changing the masked (padding) positions must not change the output.
        perturbed = x.data.copy()
        perturbed[:, 2:, :] += 5.0
        out_perturbed = attn(Tensor(perturbed), key_padding_mask=mask)
        assert not np.allclose(out_masked.data[:, 2:, :], out_perturbed.data[:, 2:, :])
        assert np.allclose(out_masked.data[:, :2, :], out_perturbed.data[:, :2, :], atol=1e-8)

    def test_causal_mask_prevents_future_leakage(self):
        attn = MultiHeadAttention(model_dim=8, num_heads=2, dropout=0.0)
        attn.eval()
        rng = np.random.default_rng(2)
        x_val = rng.normal(size=(1, 5, 8))
        out_full = attn(Tensor(x_val), causal=True)
        changed = x_val.copy()
        changed[:, -1, :] += 10.0
        out_changed = attn(Tensor(changed), causal=True)
        assert np.allclose(out_full.data[:, :-1, :], out_changed.data[:, :-1, :], atol=1e-8)

    def test_mask_shape_validation(self):
        attn = MultiHeadAttention(model_dim=8, num_heads=2)
        x = Tensor(np.zeros((2, 4, 8)))
        with pytest.raises(ValueError):
            attn(x, key_padding_mask=np.zeros((2, 5), dtype=bool))

    def test_encoder_encode_pools_over_real_tokens(self):
        encoder = TransformerEncoder(vocab_size=30, model_dim=16, num_layers=1, num_heads=2,
                                     hidden_dim=32, max_length=12)
        encoder.eval()
        ids = np.array([[5, 6, 7, 0, 0, 0]])
        longer = np.array([[5, 6, 7, 0, 0, 0, 0, 0]])
        assert np.allclose(encoder.encode(ids).data, encoder.encode(longer).data, atol=1e-6)

    def test_encoder_max_length_guard(self):
        encoder = TransformerEncoder(vocab_size=30, model_dim=16, num_layers=1, num_heads=2,
                                     hidden_dim=32, max_length=4)
        with pytest.raises(ValueError):
            encoder(np.ones((1, 6), dtype=int))

    def test_decoder_logit_shape(self):
        encoder = TransformerEncoder(vocab_size=30, model_dim=16, num_layers=1, num_heads=2,
                                     hidden_dim=32, max_length=12)
        decoder = TransformerDecoder(vocab_size=30, model_dim=16, num_layers=1, num_heads=2,
                                     hidden_dim=32, max_length=8)
        src = np.array([[3, 4, 5, 0]])
        memory = encoder(src)
        logits = decoder(np.array([[1, 6, 7]]), memory, memory_padding_mask=(src == 0))
        assert logits.shape == (1, 3, 30)

    def test_training_step_reduces_loss(self):
        encoder = TransformerEncoder(vocab_size=20, model_dim=16, num_layers=1, num_heads=2,
                                     hidden_dim=32, max_length=8, dropout=0.0, seed=3)
        optimizer = Adam(encoder.parameters(), lr=5e-3)
        ids = np.array([[1, 2, 3, 4], [5, 6, 7, 8]])
        targets = np.array([0, 1])
        head = Linear(16, 2, rng=np.random.default_rng(5))
        optimizer_head = Adam(head.parameters(), lr=5e-3)
        losses = []
        for _ in range(15):
            logits = head(encoder.encode(ids))
            loss = F.cross_entropy(logits, targets)
            encoder.zero_grad()
            head.zero_grad()
            loss.backward()
            optimizer.step()
            optimizer_head.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
