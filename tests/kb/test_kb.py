"""Unit tests for the knowledge-base substrate."""

import pytest

from repro.kb import AliasTable, Entity, EntityMentionPair, KnowledgeBase, Mention


def make_entity(idx, domain="lego", title=None):
    return Entity(
        entity_id=f"{domain}:{idx}",
        title=title or f"Brick Set {idx}",
        description=f"description of entity {idx} in {domain}",
        domain=domain,
    )


def make_mention(idx, entity_id, domain="lego", surface="Brick Set"):
    return Mention(
        mention_id=f"{domain}:m{idx}",
        surface=surface,
        context_left="in the review of",
        context_right="fans praised the build",
        domain=domain,
        gold_entity_id=entity_id,
    )


class TestEntityAndMention:
    def test_entity_roundtrip(self):
        entity = make_entity(1)
        assert Entity.from_dict(entity.to_dict()) == entity

    def test_mention_roundtrip(self):
        mention = make_mention(1, "lego:1")
        assert Mention.from_dict(mention.to_dict()) == mention

    def test_mention_context_joins_parts(self):
        mention = make_mention(1, "lego:1")
        assert "in the review of Brick Set fans praised" in mention.context

    def test_with_surface_returns_new_mention(self):
        mention = make_mention(1, "lego:1")
        rewritten = mention.with_surface("the classic set", source="rewritten")
        assert rewritten.surface == "the classic set"
        assert rewritten.source == "rewritten"
        assert mention.surface == "Brick Set"

    def test_pair_reweighted(self):
        pair = EntityMentionPair(mention=make_mention(1, "lego:1"), entity=make_entity(1))
        assert pair.reweighted(0.25).weight == 0.25
        assert pair.weight == 1.0

    def test_pair_relabelled(self):
        pair = EntityMentionPair(mention=make_mention(1, "lego:1"), entity=make_entity(1))
        noisy = pair.relabelled(make_entity(2), source="noise")
        assert noisy.entity.entity_id == "lego:2"
        assert noisy.source == "noise"


class TestKnowledgeBase:
    def test_add_and_get(self):
        kb = KnowledgeBase()
        kb.add_entity(make_entity(1))
        assert kb.get("lego:1").title == "Brick Set 1"
        assert "lego:1" in kb and len(kb) == 1

    def test_duplicate_id_rejected(self):
        kb = KnowledgeBase()
        kb.add_entity(make_entity(1))
        with pytest.raises(KeyError):
            kb.add_entity(make_entity(1))

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            KnowledgeBase().get("missing")

    def test_domain_filtering(self):
        kb = KnowledgeBase()
        kb.add_entity(make_entity(1, domain="lego"))
        kb.add_entity(make_entity(1, domain="yugioh"))
        assert len(kb.entities("lego")) == 1
        assert kb.domains() == ["lego", "yugioh"]

    def test_find_by_title_case_insensitive(self):
        kb = KnowledgeBase()
        kb.add_entity(make_entity(1, title="Golden Master"))
        assert kb.find_by_title("golden master")[0].entity_id == "lego:1"

    def test_triples_require_known_entities(self):
        kb = KnowledgeBase()
        kb.add_entity(make_entity(1))
        with pytest.raises(KeyError):
            kb.add_triple("lego:1", "related_to", "lego:999")

    def test_neighbors_and_degree(self):
        kb = KnowledgeBase()
        kb.add_entities([make_entity(1), make_entity(2), make_entity(3)])
        kb.add_triple("lego:1", "related_to", "lego:2")
        kb.add_triple("lego:3", "part_of", "lego:1")
        neighbor_ids = [e.entity_id for e in kb.neighbors("lego:1")]
        assert neighbor_ids == ["lego:2", "lego:3"]
        assert kb.degree("lego:1") == 2

    def test_statistics(self):
        kb = KnowledgeBase()
        kb.add_entities([make_entity(1), make_entity(2)])
        kb.add_triple("lego:1", "related_to", "lego:2")
        stats = kb.statistics()
        assert stats["entities"] == 2 and stats["triples"] == 1

    def test_subgraph_keeps_domain_only(self):
        kb = KnowledgeBase()
        kb.add_entities([make_entity(1, domain="lego"), make_entity(1, domain="yugioh")])
        sub = kb.subgraph("lego")
        assert len(sub) == 1 and sub.domains() == ["lego"]

    def test_from_records_roundtrip(self):
        kb = KnowledgeBase()
        kb.add_entities([make_entity(1), make_entity(2)])
        kb.add_triple("lego:1", "related_to", "lego:2")
        clone = KnowledgeBase.from_records(kb.to_records(), [("lego:1", "related_to", "lego:2")])
        assert len(clone) == 2 and len(clone.triples()) == 1


class TestAliasTable:
    def test_candidates_sorted_by_frequency(self):
        table = AliasTable()
        table.add_alias("master", "lego:1", count=3)
        table.add_alias("master", "lego:2", count=1)
        ranked = table.candidates("master")
        assert ranked[0][0] == "lego:1"
        assert ranked[0][1] == pytest.approx(0.75)

    def test_best_returns_none_for_unknown(self):
        assert AliasTable().best("nothing") is None

    def test_from_knowledge_base_strips_disambiguation(self):
        kb = KnowledgeBase()
        kb.add_entity(make_entity(1, title="SORA (satellite)"))
        table = AliasTable.from_knowledge_base(kb)
        assert table.best("SORA") == "lego:1"
        assert table.best("SORA (satellite)") == "lego:1"

    def test_normalisation_in_lookup(self):
        table = AliasTable.from_pairs([("Golden Master", "lego:1")])
        assert table.best("golden master!") == "lego:1"

    def test_empty_surface_ignored(self):
        table = AliasTable()
        table.add_alias("  ", "lego:1")
        assert len(table) == 0

    def test_ambiguity_statistic(self):
        table = AliasTable()
        table.add_alias("master", "lego:1")
        table.add_alias("master", "lego:2")
        table.add_alias("unique", "lego:3")
        assert table.ambiguity() == pytest.approx(1.5)

    def test_lookup_entities_resolves_through_kb(self):
        kb = KnowledgeBase()
        kb.add_entity(make_entity(1))
        table = AliasTable.from_pairs([("brick set 1", "lego:1")])
        assert table.lookup_entities("Brick Set 1", kb)[0].title == "Brick Set 1"

    def test_top_k_limits_results(self):
        table = AliasTable()
        for i in range(5):
            table.add_alias("shared", f"lego:{i}")
        assert len(table.candidates("shared", top_k=2)) == 2
