"""Unit tests for text normalisation helpers."""

import pytest

from repro.text import (
    disambiguation_phrase,
    has_disambiguation,
    normalize_text,
    normalize_whitespace,
    simple_tokenize,
    strip_disambiguation,
    token_overlap_ratio,
)


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("Star Trek") == "star trek"

    def test_strips_punctuation(self):
        assert normalize_text("Vader, the Sith-Lord!") == "vader the sith lord"

    def test_collapses_whitespace(self):
        assert normalize_whitespace("a   b \t c\n") == "a b c"

    def test_strips_accents(self):
        assert normalize_text("Pokémon") == "pokemon"

    def test_empty_string(self):
        assert normalize_text("") == ""

    def test_keeps_apostrophes(self):
        assert "dealer's" in normalize_text("the Dealer's choice")


class TestTokenize:
    def test_basic_split(self):
        assert simple_tokenize("The Curse of the Golden Master") == [
            "the", "curse", "of", "the", "golden", "master",
        ]

    def test_numbers_kept(self):
        assert simple_tokenize("Episode 42") == ["episode", "42"]

    def test_empty(self):
        assert simple_tokenize("   ") == []


class TestDisambiguation:
    def test_strip_removes_trailing_phrase(self):
        assert strip_disambiguation("SORA (satellite)") == "SORA"

    def test_strip_keeps_plain_title(self):
        assert strip_disambiguation("Mr. Hanasaki") == "Mr. Hanasaki"

    def test_phrase_extracted(self):
        assert disambiguation_phrase("Satellite (series)") == "series"

    def test_phrase_empty_when_absent(self):
        assert disambiguation_phrase("Satellite") == ""

    def test_has_disambiguation(self):
        assert has_disambiguation("Taku (character)")
        assert not has_disambiguation("Taku")

    def test_only_trailing_parenthesis_counts(self):
        assert strip_disambiguation("The (old) Guard") == "The (old) Guard"


class TestOverlapRatio:
    def test_identical_strings(self):
        assert token_overlap_ratio("golden master", "Golden Master") == pytest.approx(1.0)

    def test_disjoint_strings(self):
        assert token_overlap_ratio("alpha beta", "gamma delta") == 0.0

    def test_partial_overlap(self):
        assert token_overlap_ratio("alpha beta", "beta gamma") == pytest.approx(1 / 3)

    def test_empty_operand(self):
        assert token_overlap_ratio("", "anything") == 0.0
