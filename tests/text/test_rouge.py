"""Unit tests for the ROUGE implementation (Table XI metric)."""

import pytest

from repro.text import (
    best_match_rouge_1_f1,
    corpus_rouge_1_f1,
    rouge_1,
    rouge_2,
    rouge_l,
    rouge_n,
)


class TestRouge1:
    def test_identical_strings_score_one(self):
        score = rouge_1("the golden master", "the golden master")
        assert score.precision == score.recall == score.f1 == pytest.approx(1.0)

    def test_disjoint_strings_score_zero(self):
        score = rouge_1("alpha beta", "gamma delta")
        assert score.f1 == 0.0

    def test_partial_overlap(self):
        score = rouge_1("the fourth episode", "the golden episode")
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(2 / 3)

    def test_case_and_punctuation_insensitive(self):
        assert rouge_1("Golden-Master!", "golden master").f1 == pytest.approx(1.0)

    def test_empty_candidate(self):
        assert rouge_1("", "reference words").f1 == 0.0

    def test_repeated_tokens_clipped(self):
        score = rouge_1("the the the", "the cat")
        assert score.precision == pytest.approx(1 / 3)
        assert score.recall == pytest.approx(1 / 2)


class TestRouge2AndL:
    def test_rouge_2_requires_shared_bigrams(self):
        assert rouge_2("a b c", "b c d").f1 > 0
        assert rouge_2("a c b", "c a b").f1 < rouge_2("a c b", "a c b").f1

    def test_rouge_2_short_strings(self):
        assert rouge_2("word", "word").f1 == 0.0

    def test_rouge_l_subsequence(self):
        score = rouge_l("the quick brown fox", "the brown fox jumps")
        assert score.recall == pytest.approx(3 / 4)
        assert score.precision == pytest.approx(3 / 4)

    def test_rouge_l_empty(self):
        assert rouge_l("", "").f1 == 0.0

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            rouge_n("a", "a", order=0)


class TestCorpusRouge:
    def test_corpus_average(self):
        score = corpus_rouge_1_f1(["a b", "c d"], ["a b", "x y"])
        assert score == pytest.approx(50.0)

    def test_corpus_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            corpus_rouge_1_f1(["a"], ["a", "b"])

    def test_corpus_empty(self):
        assert corpus_rouge_1_f1([], []) == 0.0

    def test_best_match_uses_best_reference(self):
        score = best_match_rouge_1_f1(["golden master"], ["unrelated", "golden master"])
        assert score == pytest.approx(100.0)

    def test_best_match_empty_pools(self):
        assert best_match_rouge_1_f1([], ["a"]) == 0.0
        assert best_match_rouge_1_f1(["a"], []) == 0.0
