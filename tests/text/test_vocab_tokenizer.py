"""Unit tests for Vocabulary and Tokenizer."""

import numpy as np
import pytest

from repro.text import (
    BOS_TOKEN,
    MENTION_END,
    MENTION_START,
    PAD_TOKEN,
    SEP_TOKEN,
    SPECIAL_TOKENS,
    Tokenizer,
    UNK_TOKEN,
    Vocabulary,
    sentinel_token,
)


class TestVocabulary:
    def test_specials_always_first(self):
        vocab = Vocabulary(["alpha", "beta"])
        assert vocab.id_to_token(vocab.pad_id) == PAD_TOKEN
        assert vocab.token_to_id("alpha") >= len(SPECIAL_TOKENS)

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary(["alpha"])
        assert vocab.token_to_id("missing") == vocab.unk_id

    def test_add_token_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add_token("alpha")
        second = vocab.add_token("alpha")
        assert first == second

    def test_build_respects_max_size(self):
        texts = [["a", "a", "b", "c"], ["a", "b"]]
        vocab = Vocabulary.build(texts, max_size=len(SPECIAL_TOKENS) + 2)
        assert len(vocab) == len(SPECIAL_TOKENS) + 2
        assert "a" in vocab and "b" in vocab and "c" not in vocab

    def test_build_min_frequency(self):
        vocab = Vocabulary.build([["rare", "common", "common"]], min_frequency=2)
        assert "common" in vocab and "rare" not in vocab

    def test_decode_skips_special_tokens(self):
        vocab = Vocabulary(["word"])
        ids = [vocab.bos_id, vocab.token_to_id("word"), vocab.pad_id]
        assert vocab.decode_ids(ids) == ["word"]

    def test_sentinel_tokens_exist(self):
        vocab = Vocabulary()
        assert vocab.sentinel_id(0) != vocab.sentinel_id(1)
        with pytest.raises(ValueError):
            sentinel_token(99)

    def test_id_to_token_out_of_range(self):
        vocab = Vocabulary()
        with pytest.raises(IndexError):
            vocab.id_to_token(10_000)

    def test_save_load_roundtrip(self, tmp_path):
        vocab = Vocabulary(["alpha", "beta"])
        path = vocab.save(tmp_path / "vocab.json")
        restored = Vocabulary.load(path)
        assert len(restored) == len(vocab)
        assert restored.token_to_id("beta") == vocab.token_to_id("beta")


class TestTokenizer:
    @pytest.fixture
    def tokenizer(self):
        return Tokenizer.from_texts(
            ["the golden master fought the crew", "a satellite over the city"],
            max_length=16,
        )

    def test_encode_is_padded_to_max_length(self, tokenizer):
        ids = tokenizer.encode("the golden master")
        assert ids.shape == (16,)
        assert ids.dtype == np.int64

    def test_encode_truncates(self, tokenizer):
        ids = tokenizer.encode("word " * 100, max_length=8)
        assert ids.shape == (8,)

    def test_unknown_words_map_to_unk(self, tokenizer):
        ids = tokenizer.encode("completelyunknownword", add_bos=False)
        assert ids[0] == tokenizer.vocabulary.unk_id

    def test_encode_batch_shape(self, tokenizer):
        batch = tokenizer.encode_batch(["the crew", "the city", "golden master"])
        assert batch.shape == (3, 16)

    def test_decode_roundtrip(self, tokenizer):
        ids = tokenizer.encode("the golden master", add_bos=False)
        assert tokenizer.decode(ids) == "the golden master"

    def test_encode_mention_contains_markers(self, tokenizer):
        ids = tokenizer.encode_mention("golden master", "the", "fought the crew")
        tokens = [tokenizer.vocabulary.id_to_token(i) for i in ids]
        assert MENTION_START in tokens and MENTION_END in tokens
        assert tokens[0] == BOS_TOKEN

    def test_encode_entity_contains_separator(self, tokenizer):
        ids = tokenizer.encode_entity("Satellite", "a satellite over the city")
        tokens = [tokenizer.vocabulary.id_to_token(i) for i in ids]
        assert SEP_TOKEN in tokens

    def test_encode_cross_contains_both_parts(self, tokenizer):
        ids = tokenizer.encode_cross("golden master", "the", "fought", "Satellite", "over the city",
                                     max_length=32)
        tokens = [tokenizer.vocabulary.id_to_token(i) for i in ids]
        assert tokens.count(SEP_TOKEN) == 2

    def test_encode_summarize_source_prefix(self, tokenizer):
        ids = tokenizer.encode_summarize_source("a satellite over the city")
        tokens = [tokenizer.vocabulary.id_to_token(i) for i in ids]
        assert tokens[1] == "<summarize>"

    def test_encode_target_has_bos_and_eos(self, tokenizer):
        ids = tokenizer.encode_target("golden master", max_length=8)
        tokens = [tokenizer.vocabulary.id_to_token(i) for i in ids if i != tokenizer.pad_id]
        assert tokens[0] == BOS_TOKEN and tokens[-1] == "<eos>"

    def test_encode_target_preserves_eos_under_truncation(self, tokenizer):
        # Regression: a target longer than max_length used to lose its stop
        # symbol, so the seq2seq rewriter never saw a termination signal.
        ids = tokenizer.encode_target("the golden master fought the crew " * 10, max_length=8)
        assert ids.shape == (8,)
        assert ids[0] == tokenizer.vocabulary.bos_id
        assert ids[-1] == tokenizer.vocabulary.eos_id
        assert tokenizer.pad_id not in ids  # fully occupied, no padding

    def test_encode_target_short_sequence_unchanged(self, tokenizer):
        ids = tokenizer.encode_target("the crew", max_length=8)
        non_pad = [i for i in ids if i != tokenizer.pad_id]
        assert non_pad[0] == tokenizer.vocabulary.bos_id
        assert non_pad[-1] == tokenizer.vocabulary.eos_id
        assert len(non_pad) == 4  # <bos> the crew <eos>

    def test_encode_add_eos_preserves_eos_under_truncation(self, tokenizer):
        ids = tokenizer.encode("the golden master " * 10, max_length=6, add_eos=True)
        assert ids[-1] == tokenizer.vocabulary.eos_id

    def test_encode_without_eos_truncates_plainly(self, tokenizer):
        ids = tokenizer.encode("the golden master " * 10, max_length=6)
        assert ids[-1] != tokenizer.vocabulary.eos_id

    def test_min_length_guard(self):
        with pytest.raises(ValueError):
            Tokenizer(Vocabulary(), max_length=2)

    def test_vocab_size_property(self, tokenizer):
        assert tokenizer.vocab_size == len(tokenizer.vocabulary)
